"""Seeded, fully deterministic chaos scenarios and their fault plans.

A :class:`ChaosScenario` is the *shape* of an experiment — fleet size,
request mix, and a script of :class:`ChaosAction` faults; a
:class:`ChaosPlan` is that shape made concrete by a seed: the exact
request list (benchmark identities in a fixed order), the resolved
target shard of every action, and the per-shard fault environment.
Everything derives from ``random.Random(f"{scenario}#{seed}")`` plus
the consistent-hash ring — two runs with the same seed produce the same
plan, byte for byte, which is what makes the engine's invariant reports
comparable across runs (``repro chaos run --check``).

Actions trigger on *progress*, not wall time: ``after_responses`` says
"fire once this many requests have completed", so a scripted kill lands
at the same logical point of the run on a loaded CI box and a fast
laptop alike (``delay_s`` adds an optional wall-clock nudge for faults
that must land mid-flight, e.g. a SIGKILL while a slow job is provably
in progress).

The shipped scenarios cover the failure-mode catalog in
``docs/API.md``: worker SIGKILL mid-request, SIGKILL during a rolling
restart, a hung (SIGSTOPped) worker, a slow shard, corrupted cache
files under load, and an admission-queue 429 storm.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.fleet.hashring import HashRing
from repro.serve.identify import identify_request
from repro.serve.schema import build_request, parse_request

__all__ = [
    "ACTION_CORRUPT_CACHE",
    "ACTION_KILL",
    "ACTION_ROLL",
    "ACTION_SUSPEND",
    "ChaosAction",
    "ChaosPlan",
    "ChaosScenario",
    "PlannedRequest",
    "SCENARIOS",
    "build_plan",
    "get_scenario",
    "scenario_names",
]

# -- the action vocabulary ---------------------------------------------

ACTION_KILL = "kill_worker"          # SIGKILL one worker process
ACTION_SUSPEND = "suspend_worker"    # SIGSTOP one worker (hung, not dead)
ACTION_ROLL = "rolling_restart"      # fleet-wide drain/respawn, one shard at a time
ACTION_CORRUPT_CACHE = "corrupt_cache"  # append garbage to every shard store

_ACTION_KINDS = (
    ACTION_KILL,
    ACTION_SUSPEND,
    ACTION_ROLL,
    ACTION_CORRUPT_CACHE,
)

#: Benchmarks cheap enough (with ``fast=True``) for a chaos run's
#: request mix; the seed picks ``distinct_identities`` of them.
_BENCHMARK_ROSTER = ("matmul", "copy", "tp", "gemm", "syrk", "trmm")
_PLATFORM = "i7-5930k"


@dataclass(frozen=True)
class ChaosAction:
    """One scripted fault.

    ``shard`` may be a concrete shard index, ``None`` (the seed picks
    one), or the string ``"home:K"`` — the home shard of the plan's
    K-th identity, resolved through the same ring the router uses, so a
    scenario can guarantee it faults exactly the shard that is serving
    a known request.
    """

    kind: str
    after_responses: int = 0
    shard: object = None
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _ACTION_KINDS:
            raise ValueError(
                f"unknown chaos action {self.kind!r}; known: "
                f"{list(_ACTION_KINDS)}"
            )
        if self.after_responses < 0:
            raise ValueError(
                f"after_responses must be >= 0, got {self.after_responses}"
            )
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")


@dataclass(frozen=True)
class ChaosScenario:
    """The seed-independent shape of one chaos experiment."""

    name: str
    description: str
    workers: int = 2
    requests: int = 8
    distinct_identities: int = 2
    queue_limit: int = 16
    client_retries: int = 8
    client_concurrency: int = 4
    deadline_ms: Optional[float] = None
    require_all_ok: bool = True
    use_cache: bool = True
    actions: Tuple[ChaosAction, ...] = ()
    #: Optional per-shard worker fault: ``(shard_spec, REPRO_SERVE_FAULT)``.
    worker_fault: Optional[Tuple[str, str]] = None
    #: Optional tune-job shape (kernels/families/grid/fast — the
    #: :func:`repro.tune.build_tune_request` keywords).  When set the
    #: engine drives a journaled ``repro tune`` grid instead of the
    #: request mix, and ``after_responses`` counts settled tune cells.
    tune: Optional[Dict] = None


@dataclass(frozen=True)
class PlannedRequest:
    """One concrete request of the plan (identity + submission index)."""

    index: int
    benchmark: str
    platform: str
    fast: bool
    identity: str  # "benchmark@platform" — the reference-answer key


@dataclass
class ChaosPlan:
    """A scenario made concrete by a seed; everything here is
    reproducible from ``(scenario.name, seed)`` alone."""

    scenario: ChaosScenario
    seed: int
    requests: List[PlannedRequest] = field(default_factory=list)
    identities: List[PlannedRequest] = field(default_factory=list)
    actions: List[ChaosAction] = field(default_factory=list)
    worker_env: Dict[int, Dict[str, str]] = field(default_factory=dict)


def _home_shard(benchmark: str, platform: str, workers: int) -> int:
    """The shard the router will route this identity to (same math)."""
    request = parse_request(build_request(benchmark, platform, fast=True))
    _case, _arch, key = identify_request(request)
    return HashRing(list(range(workers))).route(key)


def _resolve_shard(
    spec: object, identities: List[PlannedRequest], workers: int,
    rng: random.Random,
) -> int:
    if spec is None:
        return rng.randrange(workers)
    if isinstance(spec, int):
        if not 0 <= spec < workers:
            raise ValueError(f"shard {spec} out of range for {workers} workers")
        return spec
    if isinstance(spec, str) and spec.startswith("home:"):
        identity = identities[int(spec.split(":", 1)[1]) % len(identities)]
        return _home_shard(identity.benchmark, identity.platform, workers)
    raise ValueError(f"unresolvable shard spec {spec!r}")


def build_plan(
    scenario: ChaosScenario, seed: int, *, requests: Optional[int] = None
) -> ChaosPlan:
    """Make the scenario concrete: same ``(name, seed)`` → same plan."""
    count = scenario.requests if requests is None else int(requests)
    if count < 1:
        raise ValueError(f"requests must be >= 1, got {count}")
    rng = random.Random(f"{scenario.name}#{seed}")
    wanted = min(scenario.distinct_identities, len(_BENCHMARK_ROSTER), count)
    benchmarks = rng.sample(_BENCHMARK_ROSTER, wanted)
    identities = [
        PlannedRequest(
            index=i,
            benchmark=benchmark,
            platform=_PLATFORM,
            fast=True,
            identity=f"{benchmark}@{_PLATFORM}",
        )
        for i, benchmark in enumerate(benchmarks)
    ]
    planned = [
        replace(
            identities[i % len(identities)],
            index=i,
        )
        for i in range(count)
    ]
    resolved_actions = [
        replace(
            action,
            shard=(
                None
                if action.kind in (ACTION_ROLL, ACTION_CORRUPT_CACHE)
                else _resolve_shard(
                    action.shard, identities, scenario.workers, rng
                )
            ),
        )
        for action in scenario.actions
    ]
    worker_env: Dict[int, Dict[str, str]] = {}
    if scenario.worker_fault is not None:
        shard_spec, fault = scenario.worker_fault
        shard = _resolve_shard(shard_spec, identities, scenario.workers, rng)
        worker_env[shard] = {"REPRO_SERVE_FAULT": fault}
    return ChaosPlan(
        scenario=scenario,
        seed=seed,
        requests=planned,
        identities=identities,
        actions=resolved_actions,
        worker_env=worker_env,
    )


# -- the shipped scenario catalog --------------------------------------

SCENARIOS: Dict[str, ChaosScenario] = {
    scenario.name: scenario
    for scenario in (
        ChaosScenario(
            name="kill-mid-request",
            description=(
                "SIGKILL the home shard while it is provably serving a "
                "slow request; the answer must arrive via failover, "
                "bit-identical to standalone"
            ),
            workers=2,
            requests=4,
            distinct_identities=1,
            client_retries=5,
            worker_fault=("home:0", "slow:2.5:1"),
            actions=(
                ChaosAction(
                    kind=ACTION_KILL,
                    shard="home:0",
                    after_responses=0,
                    delay_s=0.8,
                ),
            ),
        ),
        ChaosScenario(
            name="kill-during-roll",
            description=(
                "start a rolling restart mid-load, then SIGKILL a worker "
                "while the roll is in flight; no admitted request may be "
                "lost"
            ),
            workers=3,
            requests=10,
            distinct_identities=3,
            client_retries=8,
            actions=(
                ChaosAction(kind=ACTION_ROLL, after_responses=2),
                ChaosAction(kind=ACTION_KILL, after_responses=4),
            ),
        ),
        ChaosScenario(
            name="hung-worker",
            description=(
                "SIGSTOP one worker mid-load (alive but silent); the "
                "probe gate must reclaim and respawn it while its "
                "keyspace fails over"
            ),
            workers=2,
            requests=8,
            distinct_identities=2,
            client_retries=8,
            actions=(
                ChaosAction(
                    kind=ACTION_SUSPEND, shard="home:0", after_responses=2
                ),
            ),
        ),
        ChaosScenario(
            name="slow-shard",
            description=(
                "one shard serves a pathologically slow job; every "
                "request still completes with the right answer and no "
                "retry storm"
            ),
            workers=2,
            requests=6,
            distinct_identities=2,
            client_retries=5,
            worker_fault=("home:0", "slow:1.0:1"),
        ),
        ChaosScenario(
            name="corrupt-cache-under-load",
            description=(
                "corrupt every shard's schedule cache mid-load, then "
                "roll the fleet; workers must heal (quarantine + "
                "compact) and keep answering bit-identically"
            ),
            workers=2,
            requests=12,
            distinct_identities=3,
            client_retries=8,
            actions=(
                ChaosAction(kind=ACTION_CORRUPT_CACHE, after_responses=6),
                ChaosAction(kind=ACTION_ROLL, after_responses=8),
            ),
        ),
        ChaosScenario(
            name="tune-under-fire",
            description=(
                "SIGKILL a worker while a journaled tune grid is in "
                "flight; every cell must still settle ok (failover + "
                "retries) and a resume from the journal must reproduce "
                "the report bit-for-bit"
            ),
            workers=2,
            requests=4,  # informational: the grid below has 4 cells
            distinct_identities=2,
            client_retries=8,
            actions=(
                ChaosAction(kind=ACTION_KILL, after_responses=1),
            ),
            tune={
                "kernels": ["matmul", "mxv"],
                "grid": [{}, {"use_nti": False}],
                "fast": True,
            },
        ),
        ChaosScenario(
            name="429-storm",
            description=(
                "queue_limit=1 plus a burst of distinct identities: "
                "admission shedding must be loud (429 + Retry-After), "
                "bounded, and fully accounted"
            ),
            workers=2,
            requests=10,
            distinct_identities=6,
            queue_limit=1,
            client_retries=0,
            client_concurrency=10,
            require_all_ok=False,
            worker_fault=("home:0", "slow:0.8:1"),
        ),
    )
}


def scenario_names() -> List[str]:
    return sorted(SCENARIOS)


def get_scenario(name: str) -> ChaosScenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown chaos scenario {name!r}; known: {scenario_names()}"
        ) from None
