"""The chaos engine: drive a live fleet through a scripted fault plan.

``run_scenario`` is the one entry point.  For a given ``(scenario,
seed)`` it:

1. builds the deterministic :class:`repro.chaos.plan.ChaosPlan`;
2. computes *reference answers* for every planned identity on a
   standalone :class:`repro.serve.OptimizeServer` (no fleet, no faults)
   — the ground truth the chaos run must match bit-for-bit;
3. boots a real :class:`repro.fleet.testing.FleetThread` (worker
   subprocesses, supervisor probe gate, router with circuit breakers)
   tuned for fast failure detection;
4. fires the planned requests through blocking
   :class:`repro.serve.ServeClient` instances on a small thread pool
   while a controller thread injects the scripted faults — each fault
   triggers on *completed-request count*, not wall time, so the same
   fault lands at the same logical point on any machine;
5. snapshots the router's metrics and ``/fleet/status``; and
6. evaluates the global invariants
   (:func:`repro.chaos.invariants.evaluate_invariants`) and returns a
   :class:`ChaosResult` whose ``report`` is bit-reproducible for the
   same seed.

Faults injected here are real operating-system faults against real
processes — SIGKILL, SIGSTOP, appended garbage bytes in cache files, a
rolling restart racing the load — not mocks, which is the point: the
invariants hold because the serving stack's own failover, breaker,
deadline, and self-healing machinery handles them.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cache import shard_cache_path
from repro.chaos.invariants import (
    OUTCOME_FAILED,
    OUTCOME_OK,
    OUTCOME_SHED,
    Invariant,
    build_report,
    evaluate_invariants,
)
from repro.chaos.plan import (
    ACTION_CORRUPT_CACHE,
    ACTION_KILL,
    ACTION_ROLL,
    ACTION_SUSPEND,
    ChaosPlan,
    build_plan,
    get_scenario,
)
from repro.obs.events import EVENT_CHAOS_FAULT
from repro.obs.tracer import NULL_TRACER
from repro.serve.client import ServeClient
from repro.util.errors import ServeError, ServeOverloaded

__all__ = ["ChaosResult", "run_scenario"]

#: Garbage appended to each shard store by the corrupt-cache action:
#: one line of non-JSON noise and one checksum-mismatched record.
_CORRUPT_LINES = (
    b"@@@ chaos: not json at all @@@\n"
    b'{"k": "chaos-bad-checksum", "v": {"schedule": []}, "sum": "feedface"}\n'
)


@dataclass
class ChaosResult:
    """Everything one chaos run produced.

    ``report`` is the deterministic part (bit-identical across runs of
    the same seed); ``observations`` holds the timing-flavored rest —
    counters, shed tallies, per-shard states — for humans and logs.
    """

    plan: ChaosPlan
    ok: bool
    report: Dict
    invariants: List[Invariant] = field(default_factory=list)
    observations: Dict = field(default_factory=dict)


class _Controller:
    """Fires the plan's actions as the completed-request count crosses
    each action's ``after_responses`` threshold."""

    def __init__(self, plan, supervisor, cache_path, tracer):
        self.plan = plan
        self.supervisor = supervisor
        self.cache_path = cache_path
        self.tracer = tracer
        self.completed = 0
        self.fired: List[Dict] = []
        self.suspended: List[int] = []
        self._cv = threading.Condition()
        self._done = False
        self._roll_threads: List[threading.Thread] = []
        self._thread = threading.Thread(
            target=self._run, name="repro-chaos-controller", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def note_completed(self) -> None:
        with self._cv:
            self.completed += 1
            self._cv.notify_all()

    def finish(self, timeout_s: float = 30.0) -> None:
        with self._cv:
            self._done = True
            self._cv.notify_all()
        self._thread.join(timeout=timeout_s)
        for thread in self._roll_threads:
            thread.join(timeout=timeout_s)
        for shard in self.suspended:
            try:
                self.supervisor.resume_worker(shard)
            except Exception:
                pass  # already reclaimed by the probe gate

    def _run(self) -> None:
        for action in sorted(self.plan.actions, key=lambda a: a.after_responses):
            with self._cv:
                while self.completed < action.after_responses and not self._done:
                    self._cv.wait(timeout=0.05)
                if self._done and self.completed < action.after_responses:
                    return
            if action.delay_s:
                time.sleep(action.delay_s)
            self._fire(action)

    def _fire(self, action) -> None:
        if action.kind == ACTION_KILL:
            self.supervisor.kill_worker(action.shard)
        elif action.kind == ACTION_SUSPEND:
            self.supervisor.suspend_worker(action.shard)
            self.suspended.append(action.shard)
        elif action.kind == ACTION_ROLL:
            thread = threading.Thread(
                target=self._roll, name="repro-chaos-roll", daemon=True
            )
            thread.start()
            self._roll_threads.append(thread)
        elif action.kind == ACTION_CORRUPT_CACHE:
            self._corrupt_caches()
        self.fired.append({"kind": action.kind, "shard": action.shard})
        self.tracer.event(
            EVENT_CHAOS_FAULT,
            kind=action.kind,
            shard=action.shard,
            after_responses=action.after_responses,
        )

    def _roll(self) -> None:
        try:
            self.supervisor.rolling_restart(drain_timeout_s=30.0)
        except RuntimeError:
            # A chaos kill landed on the shard mid-roll; the probe
            # gate's restart path owns recovery from here.
            pass

    def _corrupt_caches(self) -> None:
        for shard in range(self.plan.scenario.workers):
            path = shard_cache_path(self.cache_path, shard)
            fd = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
            try:
                os.write(fd, _CORRUPT_LINES)
                os.fsync(fd)
            finally:
                os.close(fd)


def _canonical(result: Dict) -> str:
    """The bit-compare key: the schedules document, canonically dumped."""
    return json.dumps(result.get("schedules"), sort_keys=True)


def _reference_answers(plan: ChaosPlan, work_dir: str) -> Dict[str, str]:
    """Ground truth from a standalone, fault-free server."""
    from repro.serve.testing import ServerThread

    reference: Dict[str, str] = {}
    cache = os.path.join(work_dir, "reference-cache.jsonl")
    with ServerThread(queue_limit=64, cache_path=cache) as server:
        client = ServeClient(port=server.port, timeout_s=120.0, retries=2)
        for identity in plan.identities:
            result = client.optimize(
                identity.benchmark, identity.platform, fast=identity.fast
            )
            reference[identity.identity] = _canonical(result)
    return reference


def _fire_request(planned, port, plan, controller) -> Dict:
    """One planned request through its own client; never raises."""
    scenario = plan.scenario
    client = ServeClient(
        port=port,
        timeout_s=60.0,
        retries=scenario.client_retries,
        backoff_base_s=0.05,
        backoff_cap_s=0.5,
        backoff_seed=plan.seed * 1000 + planned.index,
    )
    outcome: Dict = {"index": planned.index, "identity": planned.identity}
    try:
        result = client.optimize(
            planned.benchmark,
            planned.platform,
            fast=planned.fast,
            deadline_ms=scenario.deadline_ms,
        )
        outcome.update(
            status=OUTCOME_OK,
            schedules=_canonical(result),
            served_by=result.get("served_by"),
            shard=result.get("shard"),
        )
    except ServeOverloaded as exc:
        outcome.update(
            status=OUTCOME_SHED,
            retry_after_s=exc.retry_after_s,
            reason=exc.reason,
            error=str(exc),
        )
    except (ServeError, ConnectionError, OSError) as exc:
        outcome.update(status=OUTCOME_FAILED, error=f"{type(exc).__name__}: {exc}")
    finally:
        controller.note_completed()
    return outcome


def run_scenario(
    name: str,
    *,
    seed: int,
    requests: Optional[int] = None,
    work_dir: Optional[str] = None,
    tracer=None,
) -> ChaosResult:
    """Run one seeded scenario end to end and judge its invariants."""
    from repro.fleet.testing import FleetThread

    tracer = tracer if tracer is not None else NULL_TRACER
    plan = build_plan(get_scenario(name), seed, requests=requests)
    scenario = plan.scenario
    if work_dir is None:
        work_dir = tempfile.mkdtemp(prefix=f"repro-chaos-{name}-")
    os.makedirs(work_dir, exist_ok=True)

    if scenario.tune is not None:
        return _run_tune_scenario(plan, work_dir, tracer)

    reference = _reference_answers(plan, work_dir)

    cache_path = (
        os.path.join(work_dir, "fleet-cache.jsonl") if scenario.use_cache
        else None
    )
    fleet = FleetThread(
        workers=scenario.workers,
        cache_path=cache_path,
        queue_limit=scenario.queue_limit,
        probe_interval_s=0.15,
        probe_timeout_s=1.0,
        down_after=2,
        restart_backoff_base_s=0.05,
        restart_backoff_cap_s=0.5,
        flap_threshold=100,  # chaos kills are intentional, not flapping
        worker_env=plan.worker_env,
        tracer=tracer,
        router_kwargs={
            "forward_timeout_s": 60.0,
            "breaker_open_for_s": 0.5,
            "tracer": tracer,
        },
    )
    controller = _Controller(plan, fleet.supervisor, cache_path, tracer)
    outcomes: List[Dict] = []
    with fleet:
        controller.start()
        try:
            with ThreadPoolExecutor(
                max_workers=scenario.client_concurrency,
                thread_name_prefix="repro-chaos-client",
            ) as pool:
                futures = [
                    pool.submit(
                        _fire_request, planned, fleet.port, plan, controller
                    )
                    for planned in plan.requests
                ]
                outcomes = [future.result() for future in futures]
        finally:
            controller.finish()
        admin = ServeClient(port=fleet.port, timeout_s=30.0, retries=2)
        counters = admin.metrics().get("counters", {})
        status_code, status = admin.get("/fleet/status")
        if status_code != 200:
            status = None

    outcomes.sort(key=lambda outcome: outcome["index"])
    invariants = evaluate_invariants(
        plan,
        outcomes,
        reference=reference,
        counters=counters,
        status=status,
        cache_path=cache_path,
    )
    report = build_report(plan, invariants)
    observations = {
        "work_dir": work_dir,
        "counters": counters,
        "outcomes": {
            state: sum(1 for o in outcomes if o["status"] == state)
            for state in (OUTCOME_OK, OUTCOME_SHED, OUTCOME_FAILED)
        },
        "failover_served": sum(
            1 for o in outcomes if o.get("served_by") == "failover"
        ),
        "faults_fired": controller.fired,
        "workers": [
            {k: w.get(k) for k in ("shard", "state", "restarts", "breaker")}
            for w in (status or {}).get("workers", [])
        ],
    }
    return ChaosResult(
        plan=plan,
        ok=report["ok"],
        report=report,
        invariants=invariants,
        observations=observations,
    )


def _run_tune_scenario(plan: ChaosPlan, work_dir: str, tracer) -> ChaosResult:
    """A scenario whose load is one journaled tune grid, not a request
    mix: faults fire on settled-cell counts, and after the faulted run
    a second pass resumes from the same journal — the report must fold
    to the same bytes (the tune layer's crash contract, under real
    SIGKILLs instead of a clean restart)."""
    from repro.cache import check_shard_caches
    from repro.fleet.testing import FleetThread
    from repro.sweep import Journal
    from repro.tune import (
        CELL_QUARANTINED,
        CELL_RESUMED,
        build_tune_request,
        plan_tune_cells,
    )
    from repro.tune import tune_id as tune_identity
    from repro.tune.runner import TuneRunner

    scenario = plan.scenario
    spec = dict(scenario.tune)
    request = build_tune_request(
        kernels=spec.get("kernels"),
        families=spec.get("families"),
        platforms=spec.get("platforms", ("i7-5930k",)),
        grid=spec.get("grid"),
        fast=spec.get("fast", True),
    )
    cells = plan_tune_cells(request)
    job_id = tune_identity(request)
    journal = Journal(os.path.join(work_dir, "tune-journal.jsonl"))
    cache_path = (
        os.path.join(work_dir, "fleet-cache.jsonl") if scenario.use_cache
        else None
    )
    fleet = FleetThread(
        workers=scenario.workers,
        cache_path=cache_path,
        queue_limit=scenario.queue_limit,
        probe_interval_s=0.15,
        probe_timeout_s=1.0,
        down_after=2,
        restart_backoff_base_s=0.05,
        restart_backoff_cap_s=0.5,
        flap_threshold=100,
        worker_env=plan.worker_env,
        tracer=tracer,
        router_kwargs={
            "forward_timeout_s": 60.0,
            "breaker_open_for_s": 0.5,
            "tracer": tracer,
        },
    )
    controller = _Controller(plan, fleet.supervisor, cache_path, tracer)
    with fleet:
        controller.start()
        try:
            runner = TuneRunner(
                journal,
                port=fleet.port,
                jobs=2,
                timeout_s=60.0,
                client_retries=scenario.client_retries,
                tracer=tracer,
            )
            report = runner.run(
                cells,
                tune_id=job_id,
                on_record=lambda _record: controller.note_completed(),
            )
            resumed = TuneRunner(
                journal, port=fleet.port, jobs=1, timeout_s=60.0,
                tracer=tracer,
            ).run(cells, tune_id=job_id)
        finally:
            controller.finish()
        admin = ServeClient(port=fleet.port, timeout_s=30.0, retries=2)
        counters = admin.metrics().get("counters", {})
        status_code, status = admin.get("/fleet/status")
        if status_code != 200:
            status = None

    document = report.document()
    resumed_document = resumed.document()
    invariants = []

    quarantined = sorted(o.cell.key() for o in report.quarantined)
    invariants.append(Invariant(
        "tune_all_cells_ok",
        not quarantined,
        "every tune cell settled ok despite the faults" if not quarantined
        else f"quarantined cells: {quarantined}",
    ))
    invariants.append(Invariant(
        "tune_cells_complete",
        len(report.outcomes) == len(cells),
        "every planned cell produced exactly one outcome"
        if len(report.outcomes) == len(cells)
        else f"{len(report.outcomes)} outcomes for {len(cells)} cells",
    ))
    not_resumed = sorted(
        o.cell.key() for o in resumed.outcomes
        if o.status not in (CELL_RESUMED, CELL_QUARANTINED)
    )
    identical = json.dumps(document, sort_keys=True) == json.dumps(
        resumed_document, sort_keys=True
    )
    invariants.append(Invariant(
        "tune_resume_identical",
        identical and not not_resumed,
        "the journal resume replayed every cell and reproduced the "
        "report bit-for-bit"
        if identical and not not_resumed
        else (
            f"cells re-run instead of resumed: {not_resumed}; "
            f"reports identical: {identical}"
        ),
    ))
    if cache_path is not None:
        cache_report = check_shard_caches(
            cache_path, list(range(scenario.workers))
        )
        corrupt = sum(
            shard.get("corrupt_lines", 0)
            for shard in cache_report.get("shards", {}).values()
        )
        cache_ok = bool(cache_report.get("consistent")) and corrupt == 0
        invariants.append(Invariant(
            "tune_cache_consistent",
            cache_ok,
            "shard schedule caches are mutually consistent and clean"
            if cache_ok
            else (
                f"mismatched keys: {cache_report.get('mismatched_keys')}; "
                f"corrupt lines: {corrupt}"
            ),
        ))

    chaos_report = build_report(plan, invariants)
    chaos_report["tune"] = {"tune_id": job_id, "cells": len(cells)}
    observations = {
        "work_dir": work_dir,
        "counters": counters,
        "outcomes": {
            "ok": sum(
                1 for o in report.outcomes if o.status != CELL_QUARANTINED
            ),
            "failed": len(report.quarantined),
        },
        "failover_served": counters.get("failover", 0),
        "faults_fired": controller.fired,
        "tune_report": document,
        "workers": [
            {k: w.get(k) for k in ("shard", "state", "restarts", "breaker")}
            for w in (status or {}).get("workers", [])
        ],
    }
    return ChaosResult(
        plan=plan,
        ok=chaos_report["ok"],
        report=chaos_report,
        invariants=invariants,
        observations=observations,
    )
