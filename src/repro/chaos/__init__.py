"""Deterministic chaos harness for the serve fleet.

``repro.chaos`` drives a *live* fleet — real worker subprocesses, the
real supervisor probe gate, the real router with its circuit breakers —
through seeded, scripted multi-fault scenarios (worker SIGKILL
mid-request, hung workers, slow shards, a rolling restart racing a
kill, corrupted cache files under load, admission 429 storms) and
asserts global invariants after every run: no admitted request lost,
every completed answer bit-identical to a standalone server's, retry
traffic bounded by the clients' budgets, router counters conserved, and
shard caches healed and mutually consistent.

Everything a scenario does derives from ``(scenario name, seed)``:
request mix, fault targets, client backoff jitter.  The invariant
report (``repro-chaos-report-v1``) carries only seed-deterministic
fields, so ``repro chaos run --seed S --scenario X --check`` can run a
scenario twice and require the two reports to be bit-identical — the
harness's own reproducibility is itself under test.

Entry points: ``repro chaos list`` / ``repro chaos run`` (CLI) and
:func:`run_scenario` (library/tests).
"""

from repro.chaos.engine import ChaosResult, run_scenario
from repro.chaos.invariants import (
    CHAOS_REPORT_FORMAT,
    Invariant,
    build_report,
    evaluate_invariants,
)
from repro.chaos.plan import (
    ChaosAction,
    ChaosPlan,
    ChaosScenario,
    SCENARIOS,
    build_plan,
    get_scenario,
    scenario_names,
)

__all__ = [
    "CHAOS_REPORT_FORMAT",
    "ChaosAction",
    "ChaosPlan",
    "ChaosResult",
    "ChaosScenario",
    "Invariant",
    "SCENARIOS",
    "build_plan",
    "build_report",
    "evaluate_invariants",
    "get_scenario",
    "run_scenario",
    "scenario_names",
]
