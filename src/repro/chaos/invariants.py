"""Global invariants asserted after every chaos run.

An invariant is a *cross-cutting* property that must hold no matter
which faults fired or in what interleaving: no admitted request is
lost, every completed answer is bit-identical to a standalone server's,
retry traffic is bounded by the clients' stated budgets, the router's
counters conserve (every admitted request is accounted as exactly one
response), shed requests carry well-formed retry hints, and the shard
caches end the run mutually consistent and fully healed.

The report built from these checks (``repro-chaos-report-v1``) contains
only seed-deterministic fields — names, booleans, and constant detail
strings on success — so two runs of the same ``(scenario, seed)`` can
be compared bit-for-bit (``repro chaos run --check``).  Timing-flavored
numbers (counters, failover tallies, shed counts) live in the separate
*observations* section, which the determinism check ignores.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cache import check_shard_caches, shard_cache_path
from repro.chaos.plan import ACTION_CORRUPT_CACHE, ChaosPlan

__all__ = [
    "CHAOS_REPORT_FORMAT",
    "Invariant",
    "build_report",
    "evaluate_invariants",
]

#: Schema tag of the deterministic invariant report.
CHAOS_REPORT_FORMAT = "repro-chaos-report-v1"

#: Outcome states the engine records per planned request.
OUTCOME_OK = "ok"
OUTCOME_SHED = "shed"
OUTCOME_FAILED = "failed"


@dataclass
class Invariant:
    """One named check: ``ok`` plus a human-readable ``detail``.

    On success ``detail`` is a constant string (never interpolates a
    timing-dependent number) so it is safe to compare across runs; on
    failure it says what went wrong as precisely as possible — a failed
    run exits nonzero, so its report never reaches the bit-compare.
    """

    name: str
    ok: bool
    detail: str

    def to_dict(self) -> Dict:
        return {"name": self.name, "ok": self.ok, "detail": self.detail}


def _check_no_lost_requests(plan: ChaosPlan, outcomes: List[Dict]) -> Invariant:
    name = "no_lost_requests"
    planned = {request.index for request in plan.requests}
    seen = [outcome["index"] for outcome in outcomes]
    missing = sorted(planned - set(seen))
    if missing or len(seen) != len(set(seen)):
        return Invariant(
            name, False,
            f"missing outcomes for request indices {missing}; "
            f"{len(seen) - len(set(seen))} duplicate outcome(s)",
        )
    bad = [o["index"] for o in outcomes
           if o["status"] not in (OUTCOME_OK, OUTCOME_SHED, OUTCOME_FAILED)]
    if bad:
        return Invariant(name, False, f"unknown outcome status at {bad}")
    if plan.scenario.require_all_ok:
        not_ok = sorted(
            (o["index"], o["status"], o.get("error", ""))
            for o in outcomes if o["status"] != OUTCOME_OK
        )
        if not_ok:
            return Invariant(
                name, False,
                f"scenario requires every request to succeed; failures: "
                f"{not_ok}",
            )
        return Invariant(
            name, True, "every planned request completed successfully"
        )
    failed = [o for o in outcomes if o["status"] == OUTCOME_FAILED]
    if failed:
        return Invariant(
            name, False,
            "requests neither answered nor shed: "
            f"{sorted((o['index'], o.get('error', '')) for o in failed)}",
        )
    return Invariant(
        name, True, "every planned request was answered or loudly shed"
    )


def _check_bit_identical(
    plan: ChaosPlan, outcomes: List[Dict], reference: Dict[str, str]
) -> Invariant:
    name = "bit_identical_results"
    mismatched = []
    for outcome in outcomes:
        if outcome["status"] != OUTCOME_OK:
            continue
        expected = reference.get(outcome["identity"])
        if expected is None:
            mismatched.append((outcome["index"], "no reference answer"))
        elif outcome["schedules"] != expected:
            mismatched.append((outcome["index"], outcome["identity"]))
    if mismatched:
        return Invariant(
            name, False,
            f"results diverged from the standalone reference: {mismatched}",
        )
    return Invariant(
        name, True,
        "every completed result bit-identical to the standalone reference",
    )


def _check_retry_budget(
    plan: ChaosPlan, outcomes: List[Dict], counters: Dict[str, int]
) -> Invariant:
    name = "retry_budget_bounded"
    # Each planned request may hit the router at most (retries + 1)
    # times; anything beyond that would be an unbounded retry storm.
    budget = len(plan.requests) * (plan.scenario.client_retries + 1)
    admitted = counters.get("requests_total", 0)
    if admitted > budget:
        return Invariant(
            name, False,
            f"router admitted {admitted} requests, over the aggregate "
            f"client budget of {budget}",
        )
    return Invariant(
        name, True, "router traffic stayed within the clients' retry budgets"
    )


def _check_metrics_conserved(
    plan: ChaosPlan, outcomes: List[Dict], counters: Dict[str, int]
) -> Invariant:
    name = "metrics_conserved"
    admitted = counters.get("requests_total", 0)
    answered = counters.get("responses_ok", 0) + counters.get(
        "responses_error", 0
    )
    if admitted != answered:
        return Invariant(
            name, False,
            f"router admitted {admitted} requests but accounted "
            f"{answered} responses",
        )
    tally = {
        status: sum(1 for o in outcomes if o["status"] == status)
        for status in (OUTCOME_OK, OUTCOME_SHED, OUTCOME_FAILED)
    }
    if sum(tally.values()) != len(plan.requests):
        return Invariant(
            name, False,
            f"harness outcomes {tally} do not sum to the "
            f"{len(plan.requests)} planned requests",
        )
    return Invariant(
        name, True,
        "every admitted request accounted as exactly one response",
    )


def _check_shed_well_formed(outcomes: List[Dict]) -> Invariant:
    name = "shed_requests_well_formed"
    bad = [
        outcome["index"]
        for outcome in outcomes
        if outcome["status"] == OUTCOME_SHED
        and not (outcome.get("retry_after_s", 0) > 0 or outcome.get("reason"))
    ]
    if bad:
        return Invariant(
            name, False,
            f"shed responses without a retry hint or reason at {bad}",
        )
    return Invariant(
        name, True, "every shed response carried a retry hint or a reason"
    )


def _check_cache_consistent(
    plan: ChaosPlan, status: Optional[Dict]
) -> Optional[Invariant]:
    if not plan.scenario.use_cache:
        return None
    name = "cache_consistent"
    cache = (status or {}).get("cache")
    if not isinstance(cache, dict):
        return Invariant(
            name, False, "fleet status carried no cache consistency report"
        )
    if not cache.get("consistent", False):
        return Invariant(
            name, False,
            f"shard caches disagree on keys {cache.get('mismatched_keys')}",
        )
    return Invariant(
        name, True, "shard caches mutually consistent on shared keys"
    )


def _check_cache_healed(
    plan: ChaosPlan, cache_path: Optional[str]
) -> Optional[Invariant]:
    if not any(a.kind == ACTION_CORRUPT_CACHE for a in plan.actions):
        return None
    name = "cache_healed"
    if not cache_path:
        return Invariant(
            name, False, "scenario corrupts caches but ran cache-less"
        )
    report = check_shard_caches(cache_path, range(plan.scenario.workers))
    dirty = sorted(
        shard for shard, entry in report["shards"].items()
        if entry["corrupt_lines"]
    )
    if dirty:
        return Invariant(
            name, False, f"corrupt lines survived healing on shards {dirty}"
        )
    unquarantined = [
        shard
        for shard in range(plan.scenario.workers)
        if not os.path.exists(
            shard_cache_path(cache_path, shard) + ".quarantine"
        )
    ]
    if unquarantined:
        return Invariant(
            name, False,
            f"no quarantine sidecar written for shards {unquarantined}",
        )
    return Invariant(
        name, True, "corrupt cache lines quarantined and stores healed"
    )


def evaluate_invariants(
    plan: ChaosPlan,
    outcomes: List[Dict],
    *,
    reference: Dict[str, str],
    counters: Dict[str, int],
    status: Optional[Dict] = None,
    cache_path: Optional[str] = None,
) -> List[Invariant]:
    """Run every applicable invariant; order is fixed and deterministic."""
    invariants = [
        _check_no_lost_requests(plan, outcomes),
        _check_bit_identical(plan, outcomes, reference),
        _check_retry_budget(plan, outcomes, counters),
        _check_metrics_conserved(plan, outcomes, counters),
        _check_shed_well_formed(outcomes),
    ]
    for optional in (
        _check_cache_consistent(plan, status),
        _check_cache_healed(plan, cache_path),
    ):
        if optional is not None:
            invariants.append(optional)
    return invariants


def build_report(plan: ChaosPlan, invariants: List[Invariant]) -> Dict:
    """The deterministic report: same ``(scenario, seed)`` → same bytes."""
    return {
        "format": CHAOS_REPORT_FORMAT,
        "scenario": plan.scenario.name,
        "seed": plan.seed,
        "workers": plan.scenario.workers,
        "requests": len(plan.requests),
        "identities": sorted({r.identity for r in plan.requests}),
        "ok": all(inv.ok for inv in invariants),
        "invariants": [inv.to_dict() for inv in invariants],
    }
