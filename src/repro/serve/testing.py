"""In-process server harness for tests and the CI smoke job.

``ServerThread`` runs one :class:`repro.serve.OptimizeServer` on a
daemon thread with its own event loop, hands back the bound port once
the listener is up, and drains it from the calling thread on exit —
i.e. exactly what a test (or a short-lived smoke script) needs to treat
the server as a context-managed fixture::

    with ServerThread(queue_limit=4, cache_path=tmp / "cache.jsonl") as srv:
        client = ServeClient(port=srv.port)
        result = client.optimize("matmul", "i7-5930k", fast=True)

Startup failures (a taken port, a bad argument) propagate to the
caller's thread from :meth:`start` instead of dying silently on the
daemon thread.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional

from repro.serve.server import OptimizeServer

__all__ = ["ServerThread"]


class ServerThread:
    """One server on one daemon thread; context-managed lifecycle."""

    def __init__(self, **server_kwargs) -> None:
        self.server = OptimizeServer(**server_kwargs)
        self.port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def start(self, timeout_s: float = 10.0) -> int:
        """Start the loop thread; block until the listener is bound."""
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout_s):
            raise RuntimeError("server failed to start within the timeout")
        if self._startup_error is not None:
            raise self._startup_error
        return self.port

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            self.port = loop.run_until_complete(self.server.start())
        except BaseException as exc:  # surfaced from start()
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    def drain(self, timeout_s: float = 60.0) -> None:
        """Graceful drain from the calling thread; stops the loop after."""
        if self._loop is None or self._thread is None:
            return
        if not self._thread.is_alive():
            return
        future = asyncio.run_coroutine_threadsafe(
            self.server.drain(), self._loop
        )
        future.result(timeout=timeout_s)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=timeout_s)

    def __enter__(self) -> "ServerThread":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.drain()
