"""Live serving metrics: counters, queue gauges, a latency histogram.

The server exposes one JSON snapshot (``repro-serve-metrics-v1``, see
:func:`repro.serve.schema.validate_metrics`) on ``/metrics``.  All state
here is updated from both the asyncio event loop and the worker threads,
so every mutation is guarded by one lock — the rates involved (requests,
not candidates) make contention irrelevant.

The histogram uses fixed log-spaced bucket bounds rather than adaptive
ones so that snapshots from different servers (or different moments of
one server's life) are directly comparable, the property every
production metrics pipeline (Prometheus histograms, HdrHistogram
exports) builds on.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

from repro.serve.schema import METRICS_FORMAT, METRIC_COUNTERS

__all__ = ["LATENCY_BOUNDS_MS", "LatencyHistogram", "ServeMetrics"]

#: Upper bucket bounds in milliseconds; one implicit overflow bucket.
LATENCY_BOUNDS_MS = (
    1.0,
    2.5,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
    500.0,
    1000.0,
    2500.0,
    5000.0,
    10000.0,
)


class LatencyHistogram:
    """Fixed-bound latency histogram (``observe`` in milliseconds)."""

    def __init__(self, bounds_ms=LATENCY_BOUNDS_MS) -> None:
        self.bounds_ms = tuple(float(b) for b in bounds_ms)
        if list(self.bounds_ms) != sorted(set(self.bounds_ms)):
            raise ValueError(
                f"histogram bounds must increase strictly: {bounds_ms!r}"
            )
        self._counts = [0] * (len(self.bounds_ms) + 1)
        self._count = 0
        self._sum_ms = 0.0
        self._max_ms = 0.0

    def observe(self, ms: float) -> None:
        index = len(self.bounds_ms)
        for i, bound in enumerate(self.bounds_ms):
            if ms <= bound:
                index = i
                break
        self._counts[index] += 1
        self._count += 1
        self._sum_ms += ms
        self._max_ms = max(self._max_ms, ms)

    def snapshot(self) -> Dict:
        return {
            "bounds_ms": list(self.bounds_ms),
            "counts": list(self._counts),
            "count": self._count,
            "sum_ms": round(self._sum_ms, 3),
            "max_ms": round(self._max_ms, 3),
        }


class ServeMetrics:
    """The server's counter registry; thread-safe; snapshot on demand.

    Counter names are fixed at :data:`repro.serve.schema.METRIC_COUNTERS`
    — bumping an unknown name is a programming error, caught loudly, so
    the documented snapshot schema cannot silently drift from what the
    code records.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {name: 0 for name in METRIC_COUNTERS}
        self._latency = LatencyHistogram()
        self._started_at = time.perf_counter()

    def bump(self, name: str, n: int = 1) -> None:
        with self._lock:
            if name not in self._counters:
                raise KeyError(
                    f"unknown serve counter {name!r}; known: "
                    f"{sorted(self._counters)}"
                )
            self._counters[name] += n

    def get(self, name: str) -> int:
        with self._lock:
            return self._counters[name]

    def observe_latency(self, ms: float) -> None:
        with self._lock:
            self._latency.observe(ms)

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counters)

    def snapshot(
        self,
        *,
        queue_depth: int,
        queue_limit: int,
        in_flight: int,
        draining: bool,
        cache: Optional[Dict] = None,
        tracer_counters: Optional[Dict] = None,
    ) -> Dict:
        """The full ``repro-serve-metrics-v1`` document for ``/metrics``."""
        with self._lock:
            counters = dict(self._counters)
            latency = self._latency.snapshot()
            uptime_ms = (time.perf_counter() - self._started_at) * 1000.0
        snapshot = {
            "format": METRICS_FORMAT,
            "uptime_ms": round(uptime_ms, 3),
            "queue": {"depth": int(queue_depth), "limit": int(queue_limit)},
            "in_flight": int(in_flight),
            "draining": bool(draining),
            "counters": counters,
            "latency_ms": latency,
        }
        if cache is not None:
            snapshot["cache"] = dict(cache)
        if tracer_counters:
            snapshot["tracer_counters"] = dict(tracer_counters)
        return snapshot
