"""Blocking client for the optimization service.

A deliberately small, dependency-free HTTP/1.1 client (raw sockets, one
request per connection — mirroring the server's ``Connection: close``
discipline).  It speaks the ``repro-serve-v1`` schema, backs off
deterministically on shed responses, and maps server errors onto the
repo's exception taxonomy:

* 429/503 after retries → :class:`repro.util.ServeOverloaded`
  (carries ``retry_after_s``);
* any other non-200 → :class:`repro.util.ServeError`;
* socket-level failures → :class:`ConnectionError` (the server is not
  there; nothing protocol-shaped happened).

Backoff discipline: retry *k* sleeps ``base * 2**(k-1)`` seconds,
jittered by a factor derived deterministically from ``backoff_seed`` and
capped at ``backoff_cap_s`` — so a thousand clients with distinct seeds
spread out instead of stampeding, while any one client's schedule is
exactly reproducible.  A server-provided ``Retry-After`` (sent with both
429 and 503) acts as a *floor* under the computed delay, never ignored:
the server knows how long its congestion or drain will last better than
the client's exponential curve does.

>>> client = ServeClient(port=8377)
>>> client.wait_ready(timeout_s=5.0)
True
>>> result = client.optimize("matmul", "i7-5930k", fast=True)
>>> result["served_by"]
'search'
"""

from __future__ import annotations

import random
import json
import socket
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from typing import Dict, Optional, Tuple, Union

from repro.serve.http import (
    ChunkDecoder,
    format_request,
    parse_response,
    parse_response_head,
)
from repro.serve.schema import REASON_DEADLINE_EXHAUSTED, build_request
from repro.util import Deadline, ServeError, ServeOverloaded

__all__ = ["ServeClient"]


class ServeClient:
    """One server endpoint, any number of sequential requests.

    Parameters
    ----------
    host / port:
        Where the server listens.
    timeout_s:
        Socket timeout for one round-trip.  Optimization requests can
        legitimately take long (a cold exhaustive search), so this is a
        liveness bound, not a latency target.
    retries:
        How many times :meth:`optimize` re-submits after a shed
        (429/503) response before raising
        :class:`~repro.util.ServeOverloaded`.
    backoff_base_s / backoff_cap_s / backoff_seed:
        The deterministic retry schedule (see module docstring): retry
        ``k`` sleeps ``min(cap, base * 2**(k-1)) * jitter(seed, k)``,
        floored by any server-provided ``Retry-After``.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8377,
        *,
        timeout_s: float = 120.0,
        retries: int = 3,
        backoff_base_s: float = 0.1,
        backoff_cap_s: float = 5.0,
        backoff_seed: int = 0,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout_s = float(timeout_s)
        self.retries = int(retries)
        if backoff_base_s < 0 or backoff_cap_s < 0:
            raise ValueError(
                f"backoff_base_s/backoff_cap_s must be >= 0, got "
                f"{backoff_base_s}/{backoff_cap_s}"
            )
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self.backoff_seed = int(backoff_seed)

    # -- the endpoints -------------------------------------------------

    def healthz(self) -> Dict:
        """``GET /healthz``; raises :class:`ConnectionError` when down."""
        status, _headers, body = self._roundtrip("GET", "/healthz")
        if status != 200:
            raise ServeError(
                f"healthz returned {status}: {body.get('status', body)}"
            )
        return body

    def probe(self) -> Tuple[int, Dict]:
        """``GET /healthz`` without raising on a non-200 answer.

        Returns ``(http_status, body)`` — what a supervisor's health
        gate needs: a 503-draining worker is *degraded*, not dead, and
        only a socket-level failure (still a :class:`ConnectionError`)
        means nobody is listening.
        """
        status, _headers, body = self._roundtrip("GET", "/healthz")
        return status, body

    def metrics(self) -> Dict:
        """``GET /metrics``: the live ``repro-serve-metrics-v1`` snapshot."""
        status, _headers, body = self._roundtrip("GET", "/metrics")
        if status != 200:
            raise ServeError(f"metrics returned {status}: {body!r}")
        return body

    def get(self, path: str) -> Tuple[int, Dict]:
        """One ``GET`` to any path (the fleet's ``/fleet/status`` etc.)."""
        status, _headers, body = self._roundtrip("GET", path)
        return status, body

    def post(self, path: str, payload: Optional[Dict] = None) -> Tuple[int, Dict]:
        """One ``POST`` to any path (the fleet's ``/fleet/restart``)."""
        status, _headers, body = self._roundtrip("POST", path, payload or {})
        return status, body

    def tune(self, payload: Dict):
        """``POST /v1/tune``: stream a fleet tune job's progress.

        Yields each NDJSON record of the chunked response as a dict —
        one ``repro-tune-v1`` cell record per settled cell, then the
        final ``repro-tune-report-v1`` document as the last item.  The
        connection stays open for the whole job, so ``timeout_s``
        bounds the gap *between* records, not the job.

        Raises :class:`ConnectionError` for socket-level failures or a
        stream torn before its terminating chunk (resume by re-POSTing
        the same request — the server journals per-cell progress), and
        :class:`~repro.util.ServeError` when the server answers with a
        plain JSON error document instead of a stream.
        """
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        head = format_request(
            "POST", "/v1/tune", self.host, self.port, body
        )
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout_s
            )
        except OSError as exc:
            raise ConnectionError(
                f"cannot reach server at {self.host}:{self.port}: {exc}"
            ) from exc
        try:
            try:
                sock.sendall(head + body)
                buffer = b""
                while b"\r\n\r\n" not in buffer:
                    data = sock.recv(65536)
                    if not data:
                        raise ConnectionError(
                            "server closed the connection before answering"
                        )
                    buffer += data
            except socket.timeout as exc:
                raise ConnectionError(
                    f"tune request to {self.host}:{self.port} timed out "
                    f"after {self.timeout_s:g}s"
                ) from exc
            except OSError as exc:
                raise ConnectionError(
                    f"connection to {self.host}:{self.port} died "
                    f"mid-request: {exc}"
                ) from exc
            head_bytes, _, rest = buffer.partition(b"\r\n\r\n")
            status, headers = parse_response_head(head_bytes)
            if headers.get("transfer-encoding", "").lower() != "chunked":
                # A plain JSON document: the server refused the job.
                raw = buffer + _read_all(sock)
                status, _headers, doc = parse_response(raw)
                raise ServeError(
                    f"tune failed (HTTP {status}): "
                    f"{doc.get('error', doc)}"
                )
            decoder = ChunkDecoder()
            pending = decoder.feed(rest)
            line_buffer = b""
            while True:
                for piece in pending:
                    line_buffer += piece
                    while b"\n" in line_buffer:
                        line, _, line_buffer = line_buffer.partition(b"\n")
                        if line.strip():
                            try:
                                record = json.loads(line.decode("utf-8"))
                            except (json.JSONDecodeError,
                                    UnicodeDecodeError):
                                raise ServeError(
                                    "tune stream carried a non-JSON line"
                                ) from None
                            yield record
                if decoder.done:
                    break
                try:
                    data = sock.recv(65536)
                except socket.timeout as exc:
                    raise ConnectionError(
                        f"tune stream from {self.host}:{self.port} "
                        f"stalled over {self.timeout_s:g}s"
                    ) from exc
                except OSError as exc:
                    raise ConnectionError(
                        f"tune stream from {self.host}:{self.port} died: "
                        f"{exc}"
                    ) from exc
                if not data:
                    raise ConnectionError(
                        "tune stream ended before its terminating chunk"
                    )
                pending = decoder.feed(data)
        finally:
            try:
                sock.close()
            except OSError:
                pass

    def optimize(
        self,
        benchmark: Optional[str] = None,
        platform: str = "",
        *,
        fast: bool = False,
        jobs: Union[int, str] = 1,
        deadline_ms: Optional[float] = None,
        hedge_after_s: Optional[float] = None,
        spec: Optional[str] = None,
        dims: Optional[Dict[str, int]] = None,
        dtypes: Optional[Dict[str, str]] = None,
        params: Optional[Dict[str, float]] = None,
        **options,
    ) -> Dict:
        """Submit one optimization request; block until its result.

        The target is exactly one of ``benchmark`` (a named suite
        kernel, a ``repro-serve-v1`` body on the wire) or ``spec`` +
        ``dims`` (a kernel spec string, lowered server-side; the body is
        ``repro-serve-v1.1`` and the response echoes ``schema_version``,
        ``spec`` and ``dims``).  Spec submissions coalesce and cache-hit
        with ir submissions of the same kernel.

        Returns the full result payload (``schedules`` carries one
        replayable ``repro-schedule-v1`` document per pipeline stage).
        Shed responses are retried on the deterministic backoff
        schedule; see the class docstring for the failure taxonomy.

        ``deadline_ms`` is the caller's *own* end-to-end budget, charged
        once here: re-submissions carry only the shrunken remainder, and
        the retry loop stops — raising
        :class:`~repro.util.ServeOverloaded` with
        ``reason="deadline_exhausted"`` and the last shed status — the
        moment the budget forbids another attempt, instead of sleeping
        through a backoff it can no longer afford.

        ``hedge_after_s`` arms *bounded hedging*: when the primary
        request has not answered within that many seconds and the
        deadline budget (if any) still has time left, exactly one backup
        request is launched and the first answer wins.  Server-side
        request coalescing makes the backup share the primary's
        computation, so a hedge never duplicates a search — it only
        dodges a slow or dying connection.
        """
        payload = build_request(
            benchmark,
            platform,
            fast=fast,
            jobs=jobs,
            deadline_ms=deadline_ms,
            spec=spec,
            dims=dims,
            dtypes=dtypes,
            params=params,
            **options,
        )
        deadline = (
            Deadline(deadline_ms / 1000.0, "client")
            if deadline_ms is not None
            else None
        )
        if hedge_after_s is None:
            return self._optimize_with_retries(payload, deadline)
        return self._optimize_hedged(payload, deadline, hedge_after_s)

    def _optimize_with_retries(
        self, payload: Dict, deadline: Optional[Deadline]
    ) -> Dict:
        """The retry loop: deterministic backoff, deadline-aware stop."""
        attempt = 0
        while True:
            request = payload
            if deadline is not None:
                remaining_ms = deadline.remaining_ms()
                if remaining_ms <= 0:
                    raise ServeOverloaded(
                        f"deadline of {payload['deadline_ms']:g} ms "
                        f"exhausted before the request could be "
                        f"(re)submitted (deadline_exhausted)",
                        retry_after_s=0.05,
                        reason=REASON_DEADLINE_EXHAUSTED,
                    )
                # Re-submissions spend from the same budget: the server
                # must never be granted time the caller no longer has.
                request = dict(payload)
                request["deadline_ms"] = remaining_ms
            status, headers, body = self._roundtrip(
                "POST", "/v1/optimize", request
            )
            if status == 200:
                return body
            if status in (429, 503):
                floor = _retry_after_s(headers, body)
                if attempt < self.retries:
                    attempt += 1
                    delay = self.backoff_s(attempt, floor=floor)
                    if deadline is not None and (
                        deadline.expired()
                        or delay >= (deadline.remaining() or 0.0)
                    ):
                        # The budget cannot absorb this backoff: stop
                        # retrying NOW and surface the last shed answer
                        # with the deadline_exhausted hint, rather than
                        # sleeping into a guaranteed timeout.
                        raise ServeOverloaded(
                            f"{body.get('error', f'HTTP {status}')} — "
                            f"deadline budget cannot absorb another "
                            f"{delay:.3f}s backoff (deadline_exhausted)",
                            retry_after_s=floor,
                            reason=REASON_DEADLINE_EXHAUSTED,
                            last_status=status,
                        )
                    time.sleep(delay)
                    continue
                raise ServeOverloaded(
                    body.get(
                        "error",
                        f"server overloaded (HTTP {status}) after "
                        f"{self.retries} retries",
                    ),
                    retry_after_s=floor,
                    last_status=status,
                )
            raise ServeError(
                f"optimize failed (HTTP {status}): "
                f"{body.get('error', body)}"
            )

    def _optimize_hedged(
        self,
        payload: Dict,
        deadline: Optional[Deadline],
        hedge_after_s: float,
    ) -> Dict:
        """Primary plus at most ONE budget-gated backup; first answer wins."""
        if hedge_after_s < 0:
            raise ValueError(
                f"hedge_after_s must be >= 0, got {hedge_after_s}"
            )
        pool = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="repro-hedge"
        )
        try:
            primary = pool.submit(
                self._optimize_with_retries, payload, deadline
            )
            done, _pending = wait([primary], timeout=hedge_after_s)
            futures = [primary]
            if not done and (
                deadline is None or (deadline.remaining() or 0.0) > 0
            ):
                futures.append(
                    pool.submit(
                        self._optimize_with_retries, payload, deadline
                    )
                )
            while True:
                done, pending = wait(futures, return_when=FIRST_COMPLETED)
                for future in done:
                    if future.exception() is None:
                        return future.result()
                if not pending:
                    raise primary.exception()
                futures = list(pending)
        finally:
            # Never block the winner on the loser's socket; the loser
            # thread finishes (or times out) on its own.
            pool.shutdown(wait=False)

    def backoff_s(self, attempt: int, *, floor: float = 0.0) -> float:
        """The deterministic delay before retry ``attempt`` (1-based).

        ``min(cap, base * 2**(attempt-1))`` scaled by a jitter factor in
        ``[1, 1.5]`` seeded from ``backoff_seed`` and the attempt index
        (identical across reruns, uncorrelated across seeds), then
        floored by the server's ``Retry-After`` — the server's hint may
        lengthen a wait, never shorten the cap's protection.
        """
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt}")
        base = min(
            self.backoff_cap_s,
            self.backoff_base_s * 2.0 ** (attempt - 1),
        )
        rng = random.Random(f"{self.backoff_seed}#{attempt}")
        return max(float(floor), base * (1.0 + 0.5 * rng.random()))

    def wait_ready(
        self, timeout_s: float = 10.0, interval_s: float = 0.05
    ) -> bool:
        """Poll ``/healthz`` until the server answers 200 (or time out)."""
        give_up = time.perf_counter() + timeout_s
        while time.perf_counter() < give_up:
            try:
                self.healthz()
                return True
            except (ConnectionError, OSError, ServeError):
                time.sleep(interval_s)
        return False

    # -- raw HTTP ------------------------------------------------------

    def _roundtrip(
        self, method: str, path: str, payload: Optional[Dict] = None
    ) -> Tuple[int, Dict[str, str], Dict]:
        body = b""
        if payload is not None:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
        head = format_request(method, path, self.host, self.port, body)
        try:
            with socket.create_connection(
                (self.host, self.port), timeout=self.timeout_s
            ) as sock:
                sock.sendall(head + body)
                raw = _read_all(sock)
        except socket.timeout as exc:
            raise ConnectionError(
                f"request to {self.host}:{self.port} timed out after "
                f"{self.timeout_s:g}s"
            ) from exc
        except OSError as exc:
            raise ConnectionError(
                f"cannot reach server at {self.host}:{self.port}: {exc}"
            ) from exc
        return parse_response(raw)


def _read_all(sock: socket.socket) -> bytes:
    chunks = []
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            break
        chunks.append(chunk)
    return b"".join(chunks)


def _retry_after_s(headers: Dict[str, str], body: Dict) -> float:
    value = body.get("retry_after_s", headers.get("retry-after", 1.0))
    try:
        return max(0.05, float(value))
    except (TypeError, ValueError):
        return 1.0
