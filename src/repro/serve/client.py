"""Blocking client for the optimization service.

A deliberately small, dependency-free HTTP/1.1 client (raw sockets, one
request per connection — mirroring the server's ``Connection: close``
discipline).  It speaks the ``repro-serve-v1`` schema, honours
``Retry-After`` backoff on shed responses, and maps server errors onto
the repo's exception taxonomy:

* 429/503 after retries → :class:`repro.util.ServeOverloaded`
  (carries ``retry_after_s``);
* any other non-200 → :class:`repro.util.ServeError`;
* socket-level failures → :class:`ConnectionError` (the server is not
  there; nothing protocol-shaped happened).

>>> client = ServeClient(port=8377)
>>> client.wait_ready(timeout_s=5.0)
True
>>> result = client.optimize("matmul", "i7-5930k", fast=True)
>>> result["served_by"]
'search'
"""

from __future__ import annotations

import json
import socket
import time
from typing import Dict, Optional, Tuple, Union

from repro.serve.schema import build_request
from repro.util import ServeError, ServeOverloaded

__all__ = ["ServeClient"]


class ServeClient:
    """One server endpoint, any number of sequential requests.

    Parameters
    ----------
    host / port:
        Where the server listens.
    timeout_s:
        Socket timeout for one round-trip.  Optimization requests can
        legitimately take long (a cold exhaustive search), so this is a
        liveness bound, not a latency target.
    retries:
        How many times :meth:`optimize` re-submits after a shed
        (429/503) response before raising
        :class:`~repro.util.ServeOverloaded`.  Retries sleep for the
        server-provided ``retry_after_s``.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8377,
        *,
        timeout_s: float = 120.0,
        retries: int = 3,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout_s = float(timeout_s)
        self.retries = int(retries)

    # -- the three endpoints -------------------------------------------

    def healthz(self) -> Dict:
        """``GET /healthz``; raises :class:`ConnectionError` when down."""
        status, _headers, body = self._roundtrip("GET", "/healthz")
        if status != 200:
            raise ServeError(
                f"healthz returned {status}: {body.get('status', body)}"
            )
        return body

    def metrics(self) -> Dict:
        """``GET /metrics``: the live ``repro-serve-metrics-v1`` snapshot."""
        status, _headers, body = self._roundtrip("GET", "/metrics")
        if status != 200:
            raise ServeError(f"metrics returned {status}: {body!r}")
        return body

    def optimize(
        self,
        benchmark: str,
        platform: str,
        *,
        fast: bool = False,
        jobs: Union[int, str] = 1,
        deadline_ms: Optional[float] = None,
        **options,
    ) -> Dict:
        """Submit one optimization request; block until its result.

        Returns the full result payload (``schedules`` carries one
        replayable ``repro-schedule-v1`` document per pipeline stage).
        Shed responses are retried with the server's backoff hint; see
        the class docstring for the failure taxonomy.
        """
        payload = build_request(
            benchmark,
            platform,
            fast=fast,
            jobs=jobs,
            deadline_ms=deadline_ms,
            **options,
        )
        attempt = 0
        while True:
            status, headers, body = self._roundtrip(
                "POST", "/v1/optimize", payload
            )
            if status == 200:
                return body
            if status in (429, 503):
                retry_after = _retry_after_s(headers, body)
                if attempt < self.retries:
                    attempt += 1
                    time.sleep(retry_after)
                    continue
                raise ServeOverloaded(
                    body.get(
                        "error",
                        f"server overloaded (HTTP {status}) after "
                        f"{self.retries} retries",
                    ),
                    retry_after_s=retry_after,
                )
            raise ServeError(
                f"optimize failed (HTTP {status}): "
                f"{body.get('error', body)}"
            )

    def wait_ready(
        self, timeout_s: float = 10.0, interval_s: float = 0.05
    ) -> bool:
        """Poll ``/healthz`` until the server answers 200 (or time out)."""
        give_up = time.perf_counter() + timeout_s
        while time.perf_counter() < give_up:
            try:
                self.healthz()
                return True
            except (ConnectionError, OSError, ServeError):
                time.sleep(interval_s)
        return False

    # -- raw HTTP ------------------------------------------------------

    def _roundtrip(
        self, method: str, path: str, payload: Optional[Dict] = None
    ) -> Tuple[int, Dict[str, str], Dict]:
        body = b""
        if payload is not None:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        try:
            with socket.create_connection(
                (self.host, self.port), timeout=self.timeout_s
            ) as sock:
                sock.sendall(head + body)
                raw = _read_all(sock)
        except socket.timeout as exc:
            raise ConnectionError(
                f"request to {self.host}:{self.port} timed out after "
                f"{self.timeout_s:g}s"
            ) from exc
        except OSError as exc:
            raise ConnectionError(
                f"cannot reach server at {self.host}:{self.port}: {exc}"
            ) from exc
        return _parse_response(raw)


def _read_all(sock: socket.socket) -> bytes:
    chunks = []
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            break
        chunks.append(chunk)
    return b"".join(chunks)


def _retry_after_s(headers: Dict[str, str], body: Dict) -> float:
    value = body.get("retry_after_s", headers.get("retry-after", 1.0))
    try:
        return max(0.05, float(value))
    except (TypeError, ValueError):
        return 1.0


def _parse_response(raw: bytes) -> Tuple[int, Dict[str, str], Dict]:
    if not raw:
        raise ConnectionError("server closed the connection without a response")
    head, _, rest = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    try:
        status = int(lines[0].split(" ", 2)[1])
    except (IndexError, ValueError):
        raise ServeError(f"malformed status line {lines[0]!r}") from None
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    length = headers.get("content-length")
    payload = rest if length is None else rest[: int(length)]
    try:
        body = json.loads(payload.decode("utf-8")) if payload else {}
    except (json.JSONDecodeError, UnicodeDecodeError):
        raise ServeError(
            f"server returned non-JSON body (HTTP {status})"
        ) from None
    if not isinstance(body, dict):
        raise ServeError(f"server returned non-object body (HTTP {status})")
    return status, headers, body
