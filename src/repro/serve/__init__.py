"""repro.serve — the batched, cache-backed optimization service.

The long-running counterpart of :func:`repro.api.optimize`: a pure-stdlib
asyncio HTTP/JSON server that accepts versioned ``repro-serve-v1``
requests, coalesces identical in-flight work onto one computation,
micro-batches admissions into a bounded worker pool, consults the
persistent :class:`repro.cache.ScheduleCache` before any search, sheds
load deterministically when its admission queue fills, and drains
gracefully on SIGTERM.  ``/metrics`` exposes a validated
``repro-serve-metrics-v1`` snapshot; ``serve.*`` trace events flow
through the standard :class:`repro.obs.Tracer` protocol.

Layout:

* :mod:`repro.serve.schema` — the wire formats and their validators;
* :mod:`repro.serve.server` — :class:`OptimizeServer` (admission,
  coalescing, batching, workers, drain);
* :mod:`repro.serve.coalesce` — the in-flight job table;
* :mod:`repro.serve.metrics` — counters + the latency histogram;
* :mod:`repro.serve.client` — the blocking :class:`ServeClient`;
* :mod:`repro.serve.testing` — the in-process :class:`ServerThread`
  harness used by the test suite and CI's serve-smoke job.

CLI: ``python -m repro serve`` / ``python -m repro submit``.
"""

from repro.serve.client import ServeClient
from repro.serve.metrics import LATENCY_BOUNDS_MS, LatencyHistogram, ServeMetrics
from repro.serve.identify import identify_request
from repro.serve.schema import (
    METRICS_FORMAT,
    METRIC_COUNTERS,
    OPTION_KEYS,
    SERVED_BY,
    SERVED_BY_CACHE,
    SERVED_BY_COALESCED,
    SERVED_BY_FAILOVER,
    SERVED_BY_SEARCH,
    SERVE_FORMAT,
    WORKER_SERVED_BY,
    ServeRequest,
    build_request,
    coalesce_key,
    error_payload,
    healthz_payload,
    parse_request,
    result_payload,
    validate_healthz,
    validate_metrics,
)
from repro.serve.server import OptimizeServer
from repro.serve.testing import ServerThread

__all__ = [
    "LATENCY_BOUNDS_MS",
    "LatencyHistogram",
    "METRICS_FORMAT",
    "METRIC_COUNTERS",
    "OPTION_KEYS",
    "OptimizeServer",
    "SERVED_BY",
    "SERVED_BY_CACHE",
    "SERVED_BY_COALESCED",
    "SERVED_BY_FAILOVER",
    "SERVED_BY_SEARCH",
    "SERVE_FORMAT",
    "WORKER_SERVED_BY",
    "ServeClient",
    "ServeMetrics",
    "ServeRequest",
    "ServerThread",
    "build_request",
    "coalesce_key",
    "error_payload",
    "healthz_payload",
    "identify_request",
    "parse_request",
    "result_payload",
    "validate_healthz",
    "validate_metrics",
]
