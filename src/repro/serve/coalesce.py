"""Request coalescing: identical in-flight requests share one computation.

The unit of work is a :class:`Job` — one distinct ``(func, arch,
options)`` identity (the :func:`repro.serve.schema.coalesce_key`),
whatever number of HTTP requests are waiting on it.  The
:class:`CoalesceTable` maps key → live job from admission until the
result is delivered, so the window in which a duplicate can piggyback
covers the *whole* lifetime of the computation: queued, batched, and
executing.  This is the request-collapsing discipline of CDN caches
("request coalescing") applied to optimizer searches, and it is what
turns a thundering herd of identical requests into exactly one walk of
the Algorithm 2/3 lattices.

Single-threaded by design: the table is only ever touched from the
server's asyncio event loop (admission and completion both run there),
so it needs no lock — the worker pool only sees already-created jobs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.serve.schema import ServeRequest
from repro.util import Deadline

__all__ = ["CoalesceTable", "Job"]


@dataclass
class Job:
    """One admitted computation and everyone waiting on it.

    ``future`` resolves to ``("ok", payload_dict)`` or ``("error",
    status, message)``; every waiter of the job receives the same
    outcome.  ``index`` is the 1-based admission order, which is what
    the deterministic fault plan keys on.
    """

    key: str
    request: ServeRequest
    case: object  # repro.bench.BenchmarkCase; opaque here
    future: object  # asyncio.Future, created on the server's loop
    index: int
    deadline: Optional[Deadline] = None
    admitted_at: float = field(default_factory=time.perf_counter)
    waiters: int = 1


class CoalesceTable:
    """Key → in-flight :class:`Job`; event-loop-confined, no locking."""

    def __init__(self) -> None:
        self._jobs: Dict[str, Job] = {}

    def __len__(self) -> int:
        return len(self._jobs)

    def __contains__(self, key: str) -> bool:
        return key in self._jobs

    def lookup(self, key: str) -> Optional[Job]:
        """Return the live job for ``key`` and count one more waiter."""
        job = self._jobs.get(key)
        if job is not None:
            job.waiters += 1
        return job

    def admit(self, job: Job) -> None:
        if job.key in self._jobs:
            raise RuntimeError(
                f"job {job.key[:12]}... admitted twice; lookup() first"
            )
        self._jobs[job.key] = job

    def complete(self, key: str) -> Optional[Job]:
        """Drop ``key`` from the table (the job's result is delivered).

        From this moment a new identical request starts a fresh job —
        which will hit the persistent schedule cache instead of
        searching, so nothing is recomputed; only the sharing window
        closes.
        """
        return self._jobs.pop(key, None)
