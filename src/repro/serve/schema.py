"""The ``repro-serve-v1``/``v1.1`` wire schema: requests, results,
errors, metrics.

Everything the optimization service speaks is versioned JSON.  One
request names a benchmark (the service builds the Funcs server-side from
:mod:`repro.bench`, so the wire never carries executable code), the
platform, and exactly the optimizer options that are part of the
schedule-cache key (:func:`repro.cache.optimize_options`)::

    {"format": "repro-serve-v1", "benchmark": "matmul", "fast": true,
     "platform": "i7-5930k", "options": {"use_nti": true, ...},
     "jobs": 1, "deadline_ms": 2000.0}

``repro-serve-v1.1`` adds the kernel spec language as a first-class
target: instead of ``benchmark``, a request may carry a ``spec`` string
plus its ``dims`` (and optional ``dtypes``/``params``), lowered
server-side by :mod:`repro.frontend`::

    {"format": "repro-serve-v1.1", "spec": "C[i,j] += A[i,k] * B[k,j]",
     "dims": {"i": 512, "j": 512, "k": 512}, "platform": "i7-5930k"}

Exactly one of ``benchmark`` / ``spec`` is required in a v1.1 body
(v1 bodies are unchanged byte-for-byte — same fields, same defaults,
same rejections).  Responses to v1.1 requests echo
``"schema_version": "1.1"`` plus the request's spec/dims; responses to
v1 requests are bit-identical to what a v1-only server produced.
Because :mod:`repro.serve.identify` fingerprints the *lowered* Func,
spec- and benchmark-submissions of the same kernel coalesce, cache-hit
and shard together.

One result carries the serialized schedule of every pipeline stage
(:func:`repro.ir.serialize.schedule_to_dict` — replayable on any machine
with :func:`repro.ir.serialize.schedule_from_dict`), the coalescing key
the server computed from the :mod:`repro.cache.fingerprint` hashes, and
``served_by`` — how the response was produced:

* ``search`` — this request ran the Algorithm 2/3 searches;
* ``cache`` — every stage replayed from the persistent
  :class:`repro.cache.ScheduleCache` without searching;
* ``coalesced`` — an identical request was already in flight and this
  one shared its computation.

Error responses are ``{"format": ..., "kind": "error", "status": <int>,
"error": "<friendly message>"}`` with the HTTP status mirrored in the
body, and 429/503 responses carry a ``Retry-After`` header (echoed as
``retry_after_s``) so clients can back off deterministically.

The ``/metrics`` endpoint returns a ``repro-serve-metrics-v1`` snapshot;
:func:`validate_metrics` is the machine-checkable contract CI's
serve-smoke job holds the server to.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.cache.fingerprint import optimize_options, options_fingerprint
from repro.util import ServeError

#: Request/response schema tag; bump on any incompatible layout change.
SERVE_FORMAT = "repro-serve-v1"
#: The v1.1 extension: spec-string targets; v1 bodies stay byte-valid.
SERVE_FORMAT_V11 = "repro-serve-v1.1"
#: Every format a server accepts, oldest first.
SERVE_FORMATS = (SERVE_FORMAT, SERVE_FORMAT_V11)
#: The ``schema_version`` echoed in responses to v1.1 requests.
SCHEMA_VERSION_V11 = "1.1"
#: Metrics snapshot schema tag, versioned independently of the wire.
METRICS_FORMAT = "repro-serve-metrics-v1"

#: The ways a response can be produced (see module docstring).
#: ``failover`` is applied by the fleet router, never by a worker: it
#: marks a response computed by the deterministic sibling shard because
#: the key's home shard was down/draining (:mod:`repro.fleet`).
SERVED_BY_SEARCH = "search"
SERVED_BY_CACHE = "cache"
SERVED_BY_COALESCED = "coalesced"
SERVED_BY_FAILOVER = "failover"
SERVED_BY = (
    SERVED_BY_SEARCH,
    SERVED_BY_CACHE,
    SERVED_BY_COALESCED,
    SERVED_BY_FAILOVER,
)
#: What a worker itself may claim (the router adds ``failover``).
WORKER_SERVED_BY = (SERVED_BY_SEARCH, SERVED_BY_CACHE, SERVED_BY_COALESCED)

#: Machine-readable ``reason`` tags an error response may carry (the
#: human-facing ``error`` message stays free-form).  ``deadline_expired``
#: marks a 504 whose end-to-end budget ran out — at a worker's
#: admission gate, mid-search, or at the router between failover legs;
#: ``deadline_exhausted`` is the client-side cousin attached to a
#: :class:`~repro.util.ServeOverloaded` when the caller's own budget
#: forbids another retry.
REASON_DEADLINE_EXPIRED = "deadline_expired"
REASON_DEADLINE_EXHAUSTED = "deadline_exhausted"
#: A 400 whose spec failed to lower (parse error, non-affine index,
#: missing dims...) — :class:`~repro.util.ValidationError` territory,
#: never a 500 from the worker.
REASON_INVALID_SPEC = "invalid_spec"

#: Option switches a request may set: the six boolean schedule-cache
#: switches plus the optional ``multistride`` strategy (``"off"`` |
#: ``"auto"`` | stream count >= 2).  ``multistride`` is *optional* on
#: the wire — the default ``"off"`` normalizes out of the canonical
#: options dict, so default request bodies (and their coalescing keys)
#: are byte-identical to pre-multistride servers'.
OPTION_KEYS = tuple(optimize_options()) + ("multistride",)

#: Counter names every metrics snapshot must carry (all >= 0 integers).
METRIC_COUNTERS = (
    "requests_total",
    "responses_ok",
    "responses_error",
    "shed",
    "coalesced",
    "cache_hits",
    "cache_misses",
    "searches",
    "deadline_expired",
    "faults_injected",
)

__all__ = [
    "METRICS_FORMAT",
    "METRIC_COUNTERS",
    "OPTION_KEYS",
    "REASON_DEADLINE_EXHAUSTED",
    "REASON_DEADLINE_EXPIRED",
    "REASON_INVALID_SPEC",
    "SCHEMA_VERSION_V11",
    "SERVED_BY",
    "SERVED_BY_CACHE",
    "SERVED_BY_COALESCED",
    "SERVED_BY_FAILOVER",
    "SERVED_BY_SEARCH",
    "SERVE_FORMAT",
    "SERVE_FORMATS",
    "SERVE_FORMAT_V11",
    "WORKER_SERVED_BY",
    "ServeRequest",
    "build_request",
    "coalesce_key",
    "error_payload",
    "healthz_payload",
    "parse_request",
    "render_for",
    "result_payload",
    "validate_healthz",
    "validate_metrics",
]


@dataclass(frozen=True)
class ServeRequest:
    """One parsed, validated optimization request.

    ``options`` is always the complete canonical dict (request-supplied
    switches merged over :func:`repro.cache.optimize_options` defaults),
    so fingerprints computed from it match the persistent cache's.

    The target is either a ``benchmark`` name (both formats) or, for
    ``repro-serve-v1.1``, a kernel ``spec`` string with its ``dims``
    (plus optional ``dtypes``/``params``) — exactly one of the two.
    ``format`` records which wire format the request arrived in, so the
    server can render the response in kind.
    """

    benchmark: Optional[str] = None
    platform: str = ""
    fast: bool = False
    options: Dict[str, bool] = field(default_factory=optimize_options)
    jobs: Union[int, str] = 1
    deadline_ms: Optional[float] = None
    format: str = SERVE_FORMAT
    spec: Optional[str] = None
    dims: Optional[Mapping[str, int]] = None
    dtypes: Optional[Mapping[str, str]] = None
    params: Optional[Mapping[str, Union[int, float]]] = None

    @property
    def label(self) -> str:
        """Attribution name: the benchmark, or ``spec:<output>`` for a
        spec target (used in traces, metrics and error bodies)."""
        if self.benchmark is not None:
            return self.benchmark
        match = re.match(r"\s*([A-Za-z_][A-Za-z0-9_]*)", self.spec or "")
        return f"spec:{match.group(1) if match else '?'}"

    def to_dict(self) -> Dict:
        if self.format == SERVE_FORMAT:
            payload = {
                "format": SERVE_FORMAT,
                "benchmark": self.benchmark,
                "platform": self.platform,
                "fast": self.fast,
                "options": dict(self.options),
                "jobs": self.jobs,
            }
            if self.deadline_ms is not None:
                payload["deadline_ms"] = self.deadline_ms
            return payload
        payload = {"format": self.format}
        if self.benchmark is not None:
            payload["benchmark"] = self.benchmark
        if self.spec is not None:
            payload["spec"] = self.spec
            payload["dims"] = dict(self.dims or {})
            if self.dtypes:
                payload["dtypes"] = dict(self.dtypes)
            if self.params:
                payload["params"] = dict(self.params)
        payload.update(
            platform=self.platform,
            fast=self.fast,
            options=dict(self.options),
            jobs=self.jobs,
        )
        if self.deadline_ms is not None:
            payload["deadline_ms"] = self.deadline_ms
        return payload


def build_request(
    benchmark: Optional[str] = None,
    platform: str = "",
    *,
    fast: bool = False,
    jobs: Union[int, str] = 1,
    deadline_ms: Optional[float] = None,
    spec: Optional[str] = None,
    dims: Optional[Mapping[str, int]] = None,
    dtypes: Optional[Mapping[str, str]] = None,
    params: Optional[Mapping[str, Union[int, float]]] = None,
    **options,
) -> Dict:
    """Client-side sugar: a wire-ready request dict with defaults filled.

    ``options`` accepts exactly the :data:`OPTION_KEYS` switches
    (``use_nti=False`` and friends); anything else is rejected here,
    before a round-trip to the server can bounce it.

    A ``benchmark`` target produces a ``repro-serve-v1`` body —
    byte-identical to what pre-v1.1 clients sent; a ``spec`` target
    (with ``dims``, optional ``dtypes``/``params``) produces a
    ``repro-serve-v1.1`` body.  Exactly one of the two is required.
    """
    unknown = sorted(set(options) - set(OPTION_KEYS))
    if unknown:
        raise ServeError(
            f"unknown option(s) {unknown}; known: {list(OPTION_KEYS)}"
        )
    try:
        canonical = optimize_options(**options)
    except ValueError as exc:
        raise ServeError(str(exc)) from None
    if (benchmark is None) == (spec is None):
        raise ServeError(
            "a request needs exactly one of benchmark= or spec="
        )
    if benchmark is not None and (
        dims is not None or dtypes is not None or params is not None
    ):
        raise ServeError(
            "dims=/dtypes=/params= are only meaningful with spec="
        )
    if spec is not None and dims is None:
        raise ServeError(
            "spec= needs dims= (loop extents, e.g. "
            "{'i': 512, 'j': 512, 'k': 512})"
        )
    return ServeRequest(
        benchmark=benchmark,
        platform=platform,
        fast=bool(fast),
        options=canonical,
        jobs=jobs,
        deadline_ms=deadline_ms,
        format=SERVE_FORMAT if spec is None else SERVE_FORMAT_V11,
        spec=spec,
        dims=dict(dims) if dims is not None else None,
        dtypes=dict(dtypes) if dtypes is not None else None,
        params=dict(params) if params is not None else None,
    ).to_dict()


def _require(payload: Dict, key: str, kind, kindname: str):
    value = payload.get(key)
    if not isinstance(value, kind) or isinstance(value, bool) and kind is not bool:
        raise ServeError(
            f"request field {key!r} must be a {kindname}, got {value!r}"
        )
    return value


def parse_request(payload) -> ServeRequest:
    """Validate one wire payload into a :class:`ServeRequest`.

    Raises :class:`~repro.util.ServeError` with a friendly,
    actionable message on any violation — the server maps these
    straight to 400 responses.

    Both :data:`SERVE_FORMATS` are accepted; a ``repro-serve-v1`` body
    is validated exactly as a v1-only server validated it (same fields,
    same defaults, same rejections — ``spec`` is an unknown field
    there), and ``repro-serve-v1.1`` additionally accepts the
    spec-target fields.
    """
    if not isinstance(payload, dict):
        raise ServeError(
            f"request body must be a JSON object, got "
            f"{type(payload).__name__}"
        )
    fmt = payload.get("format")
    if fmt not in SERVE_FORMATS:
        raise ServeError(
            f"unsupported request format {fmt!r} "
            f"(this server speaks {SERVE_FORMAT!r})"
        )
    known = {
        "format",
        "benchmark",
        "platform",
        "fast",
        "options",
        "jobs",
        "deadline_ms",
    }
    if fmt == SERVE_FORMAT_V11:
        known |= {"spec", "dims", "dtypes", "params"}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ServeError(
            f"unknown request field(s) {unknown}; known: {sorted(known)}"
        )
    spec = dims = dtypes = params = None
    if fmt == SERVE_FORMAT_V11:
        benchmark = payload.get("benchmark")
        spec = payload.get("spec")
        if (benchmark is None) == (spec is None):
            raise ServeError(
                f"a {SERVE_FORMAT_V11} request needs exactly one of "
                f"'benchmark' or 'spec'"
            )
        if benchmark is not None:
            benchmark = _require(payload, "benchmark", str, "string")
            for key in ("dims", "dtypes", "params"):
                if payload.get(key) is not None:
                    raise ServeError(
                        f"request field {key!r} is only meaningful "
                        f"with 'spec'"
                    )
        else:
            spec = _require(payload, "spec", str, "string")
            dims = _require(payload, "dims", dict, "object")
            for key, value in dims.items():
                if (
                    isinstance(value, bool)
                    or not isinstance(value, int)
                    or value <= 0
                ):
                    raise ServeError(
                        f"dims[{key!r}] must be a positive integer, "
                        f"got {value!r}"
                    )
            dtypes = payload.get("dtypes")
            if dtypes is not None:
                if not isinstance(dtypes, dict) or not all(
                    isinstance(v, str) for v in dtypes.values()
                ):
                    raise ServeError(
                        f"request field 'dtypes' must map names to "
                        f"element-type strings, got {dtypes!r}"
                    )
            params = payload.get("params")
            if params is not None:
                if not isinstance(params, dict) or not all(
                    isinstance(v, (int, float)) and not isinstance(v, bool)
                    for v in params.values()
                ):
                    raise ServeError(
                        f"request field 'params' must map names to "
                        f"numbers, got {params!r}"
                    )
    else:
        benchmark = _require(payload, "benchmark", str, "string")
    platform = _require(payload, "platform", str, "string")
    fast = payload.get("fast", False)
    if not isinstance(fast, bool):
        raise ServeError(f"request field 'fast' must be a boolean, got {fast!r}")
    raw_options = payload.get("options", {})
    if not isinstance(raw_options, dict):
        raise ServeError(
            f"request field 'options' must be an object, got {raw_options!r}"
        )
    unknown = sorted(set(raw_options) - set(OPTION_KEYS))
    if unknown:
        raise ServeError(
            f"unknown option(s) {unknown}; known: {list(OPTION_KEYS)}"
        )
    for key, value in raw_options.items():
        if key == "multistride":
            if isinstance(value, bool) or not (
                value in ("off", "auto")
                or (isinstance(value, int) and value >= 2)
            ):
                raise ServeError(
                    f"option 'multistride' must be 'off', 'auto' or an "
                    f"integer >= 2, got {value!r}"
                )
            continue
        if not isinstance(value, bool):
            raise ServeError(
                f"option {key!r} must be a boolean, got {value!r}"
            )
    jobs = payload.get("jobs", 1)
    try:
        from repro.core.parallel import resolve_jobs

        resolve_jobs(jobs)
    except ValueError as exc:
        raise ServeError(str(exc)) from None
    deadline_ms = payload.get("deadline_ms")
    if deadline_ms is not None:
        if (
            isinstance(deadline_ms, bool)
            or not isinstance(deadline_ms, (int, float))
            or deadline_ms <= 0
        ):
            raise ServeError(
                f"deadline_ms must be a positive number, got {deadline_ms!r}"
            )
        deadline_ms = float(deadline_ms)
    return ServeRequest(
        benchmark=benchmark,
        platform=platform,
        fast=fast,
        options=optimize_options(**raw_options),
        jobs=jobs,
        deadline_ms=deadline_ms,
        format=fmt,
        spec=spec,
        dims=dims,
        dtypes=dtypes,
        params=params,
    )


def coalesce_key(
    stage_fingerprints: Sequence[str], arch_fingerprint: str, options: Dict
) -> str:
    """The in-flight/coalescing identity of one request.

    Built from exactly what determines the chosen schedules — the
    content fingerprints of every pipeline stage, the platform
    fingerprint, and the options fingerprint.  ``jobs``, deadlines and
    tracers are deliberately excluded (they cannot change the result;
    see :mod:`repro.cache.fingerprint`), so differently-budgeted
    identical requests still share one computation.
    """
    body = ",".join(stage_fingerprints)
    return hashlib.sha256(
        f"{body}:{arch_fingerprint}:{options_fingerprint(options)}".encode(
            "utf-8"
        )
    ).hexdigest()


def healthz_payload(
    *,
    draining: bool,
    queue_depth: int,
    queue_limit: int,
    in_flight: int,
    admitted: int,
) -> Dict:
    """Assemble one enriched ``GET /healthz`` body (``repro-serve-v1``).

    This is more than a liveness probe: the fleet router health-gates on
    ``draining`` (route around, don't restart), and the queue/in-flight
    gauges let a supervisor tell a busy worker from a hung one.  The
    layout is versioned as part of the wire schema; see
    :func:`validate_healthz`.
    """
    return {
        "format": SERVE_FORMAT,
        "status": "draining" if draining else "ok",
        "draining": bool(draining),
        "queue": {"depth": int(queue_depth), "limit": int(queue_limit)},
        "in_flight": int(in_flight),
        "admitted": int(admitted),
    }


def validate_healthz(body) -> List[str]:
    """Check one ``/healthz`` body against the documented schema.

    Returns every problem found (empty list = valid), in the style of
    :func:`validate_metrics`.
    """
    problems: List[str] = []
    if not isinstance(body, dict):
        return [f"healthz body is {type(body).__name__}, not an object"]
    if body.get("format") != SERVE_FORMAT:
        problems.append(
            f"format is {body.get('format')!r} (expected {SERVE_FORMAT!r})"
        )
    if body.get("status") not in ("ok", "draining"):
        problems.append(
            f"status must be 'ok' or 'draining', got {body.get('status')!r}"
        )
    if not isinstance(body.get("draining"), bool):
        problems.append(
            f"draining must be a boolean, got {body.get('draining')!r}"
        )
    elif (body.get("status") == "draining") != body["draining"]:
        problems.append("status and the draining flag disagree")
    queue = body.get("queue")
    if not isinstance(queue, dict):
        problems.append(f"queue must be an object, got {queue!r}")
    for key in ("in_flight", "admitted"):
        value = body.get(key)
        if isinstance(value, bool) or not isinstance(value, int) or value < 0:
            problems.append(
                f"{key} must be a non-negative integer, got {value!r}"
            )
    if isinstance(queue, dict):
        for key in ("depth", "limit"):
            value = queue.get(key)
            if (
                isinstance(value, bool)
                or not isinstance(value, int)
                or value < 0
            ):
                problems.append(
                    f"queue.{key} must be a non-negative integer, "
                    f"got {value!r}"
                )
    return problems


def result_payload(
    request: ServeRequest,
    key: str,
    schedules: Sequence[Tuple[str, Dict]],
    *,
    served_by: str,
    elapsed_ms: float,
    stage_sources: Optional[Sequence[str]] = None,
) -> Dict:
    """Assemble one success response body (server-side).

    The body is always the canonical v1 layout — for a v1.1 request the
    server re-stamps it per-request with :func:`render_for`, which is
    what lets coalesced spec- and benchmark-submissions share one
    computed payload.
    """
    assert served_by in WORKER_SERVED_BY
    return {
        "format": SERVE_FORMAT,
        "kind": "result",
        "benchmark": request.label,
        "platform": request.platform,
        "key": key,
        "served_by": served_by,
        "schedules": [
            {"stage": stage, "schedule": payload}
            for stage, payload in schedules
        ],
        "stage_sources": list(
            stage_sources
            if stage_sources is not None
            else [served_by] * len(schedules)
        ),
        "elapsed_ms": round(elapsed_ms, 3),
    }


def error_payload(
    status: int,
    message: str,
    *,
    retry_after_s: Optional[float] = None,
    reason: Optional[str] = None,
) -> Dict:
    """Assemble one error response body (server-side).

    ``reason`` is the optional machine-readable tag
    (:data:`REASON_DEADLINE_EXPIRED` and friends) clients and the chaos
    harness key on; the ``error`` message stays free-form prose.
    """
    payload = {
        "format": SERVE_FORMAT,
        "kind": "error",
        "status": int(status),
        "error": str(message),
    }
    if retry_after_s is not None:
        payload["retry_after_s"] = retry_after_s
    if reason is not None:
        payload["reason"] = str(reason)
    return payload


def render_for(request: Optional[ServeRequest], payload: Dict) -> Dict:
    """Re-stamp one canonical (v1-layout) response body for the wire
    format ``request`` arrived in.

    For a v1 request (or before a request could be parsed,
    ``request=None``) this is the identity — v1 responses stay
    bit-identical to a v1-only server's.  For a v1.1 request the copy
    gains the v1.1 format tag, the explicit ``schema_version`` echo,
    and (for spec targets) the request's ``spec``/``dims`` so a caller
    can correlate responses without keeping request state.
    """
    if request is None or request.format == SERVE_FORMAT:
        return payload
    out = dict(payload)
    out["format"] = SERVE_FORMAT_V11
    out["schema_version"] = SCHEMA_VERSION_V11
    if request.spec is not None:
        out["spec"] = request.spec
        out["dims"] = dict(request.dims or {})
    return out


# -- metrics snapshot contract -----------------------------------------


def validate_metrics(snapshot) -> List[str]:
    """Check one ``/metrics`` snapshot against the documented schema.

    Returns every problem found (empty list = valid), in the style of
    :func:`repro.obs.validate_trace`.  CI's serve-smoke job fails on a
    non-empty return, which is what keeps the snapshot layout an actual
    contract rather than documentation drift.
    """
    problems: List[str] = []
    if not isinstance(snapshot, dict):
        return [f"snapshot is {type(snapshot).__name__}, not an object"]
    if snapshot.get("format") != METRICS_FORMAT:
        problems.append(
            f"format is {snapshot.get('format')!r} "
            f"(expected {METRICS_FORMAT!r})"
        )

    def _nonneg_number(key, value) -> Optional[str]:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return f"{key} must be a number, got {value!r}"
        if value < 0:
            return f"{key} must be >= 0, got {value!r}"
        return None

    for key in ("uptime_ms", "in_flight"):
        note = _nonneg_number(key, snapshot.get(key))
        if note:
            problems.append(note)
    if not isinstance(snapshot.get("draining"), bool):
        problems.append(
            f"draining must be a boolean, got {snapshot.get('draining')!r}"
        )
    queue = snapshot.get("queue")
    if not isinstance(queue, dict):
        problems.append(f"queue must be an object, got {queue!r}")
    else:
        for key in ("depth", "limit"):
            note = _nonneg_number(f"queue.{key}", queue.get(key))
            if note:
                problems.append(note)
    counters = snapshot.get("counters")
    if not isinstance(counters, dict):
        problems.append(f"counters must be an object, got {counters!r}")
    else:
        for name in METRIC_COUNTERS:
            value = counters.get(name)
            if (
                isinstance(value, bool)
                or not isinstance(value, int)
                or value < 0
            ):
                problems.append(
                    f"counters.{name} must be a non-negative integer, "
                    f"got {value!r}"
                )
    latency = snapshot.get("latency_ms")
    if not isinstance(latency, dict):
        problems.append(f"latency_ms must be an object, got {latency!r}")
    else:
        bounds = latency.get("bounds_ms")
        counts = latency.get("counts")
        if not isinstance(bounds, list) or not all(
            isinstance(b, (int, float)) and not isinstance(b, bool)
            for b in bounds
        ):
            problems.append(f"latency_ms.bounds_ms must be numbers, got {bounds!r}")
        elif sorted(bounds) != bounds or len(set(bounds)) != len(bounds):
            problems.append(
                f"latency_ms.bounds_ms must increase strictly: {bounds!r}"
            )
        if not isinstance(counts, list) or not all(
            isinstance(c, int) and not isinstance(c, bool) and c >= 0
            for c in counts
        ):
            problems.append(
                f"latency_ms.counts must be non-negative integers, got {counts!r}"
            )
        elif isinstance(bounds, list) and len(counts) != len(bounds) + 1:
            problems.append(
                f"latency_ms.counts needs len(bounds_ms)+1 buckets "
                f"(one overflow), got {len(counts)} for {len(bounds)} bounds"
            )
        for key in ("count", "sum_ms"):
            note = _nonneg_number(f"latency_ms.{key}", latency.get(key))
            if note:
                problems.append(note)
    return problems
