"""The optimization service: a pure-asyncio HTTP/1.1 JSON server.

Architecture (one event loop, one bounded queue, one worker pool)::

    HTTP conn ──► admission ──► CoalesceTable ──► asyncio.Queue ──► dispatcher
                   (400/429/503)   (share in-flight)  (bounded)       (micro-batch)
                                                                        │
    HTTP conn ◄── response  ◄── job future  ◄── worker pool  ◄──────────┘
                                               (threads; each search may
                                                fan out further through
                                                repro.core.parallel)

* **Admission control** — requests are validated, fingerprinted and
  either coalesced onto an in-flight job, enqueued, or *shed*: when the
  bounded queue is full (or the server is draining) the response is an
  immediate 429/503 with ``Retry-After``, never an unbounded queue.
* **Micro-batching** — the dispatcher drains the queue in bounded
  windows (``batch_window_ms`` / ``batch_max``) before handing jobs to
  the pool, widening the coalescing window under bursts at a bounded
  latency cost.
* **Warm paths** — each pipeline stage consults the persistent
  :class:`repro.cache.ScheduleCache` before any search; a fully-cached
  request never touches Algorithms 2/3.
* **Deadlines** — a request's ``deadline_ms`` starts counting at
  admission; time spent queued is charged against it, and the remainder
  is mapped onto the optimizer's cooperative
  :class:`~repro.util.Deadline` checkpoints.
* **Graceful drain** — SIGTERM/SIGINT stop the listener, let every
  admitted job finish and every open connection respond, then shut the
  pool down; in-flight requests are never dropped.
* **Operability** — ``/healthz``, ``/metrics``
  (``repro-serve-metrics-v1``), per-request ``serve.*`` trace events
  through the standard :class:`repro.obs.Tracer` protocol, and a
  deterministic fault hook (:class:`repro.robust.ServeFaultPlan`,
  ``REPRO_SERVE_FAULT``) for testing slow/crashed workers.

The HTTP surface is deliberately minimal — ``Connection: close``, JSON
bodies, three routes — because the protocol is an implementation detail
of :mod:`repro.serve.client`; nothing here depends on ``http.server``.
"""

from __future__ import annotations

import asyncio
import json
import math
import os
import signal
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

from repro import api
from repro.arch import platform_by_name
from repro.cache import ScheduleCache
from repro.core.parallel import resolve_jobs
from repro.ir.serialize import schedule_to_dict
from repro.obs import NULL_TRACER
from repro.obs.events import (
    EVENT_SERVE_DRAIN,
    EVENT_SERVE_REQUEST,
    EVENT_SERVE_SHED,
)
from repro.robust.faults import (
    KIND_CRASH,
    KIND_SLOW,
    SERVE_FAULT_ENV,
    ServeFaultPlan,
    ServeFaultSpec,
    parse_serve_fault,
)
from repro.serve.coalesce import CoalesceTable, Job
from repro.serve.http import (
    DEADLINE_HEADER,
    HttpViolation,
    IO_TIMEOUT_S,
    read_request,
    write_response,
)
from repro.serve.identify import identify_request
from repro.serve.metrics import ServeMetrics
from repro.options import OptimizeOptions
from repro.serve.schema import (
    REASON_DEADLINE_EXPIRED,
    REASON_INVALID_SPEC,
    SERVED_BY_CACHE,
    SERVED_BY_COALESCED,
    SERVED_BY_SEARCH,
    error_payload,
    healthz_payload,
    parse_request,
    render_for,
    result_payload,
)
from repro.util import (
    Deadline,
    DeadlineExceeded,
    ReproError,
    ServeError,
    ValidationError,
)

__all__ = ["OptimizeServer"]


class OptimizeServer:
    """One long-lived optimization service instance.

    Parameters
    ----------
    host / port:
        Bind address; ``port=0`` picks a free port (``.port`` reports
        the bound one after :meth:`start`).
    workers:
        Worker-pool threads executing jobs (``0``/``"auto"`` resolve via
        :func:`repro.core.parallel.resolve_jobs`).  Each job may fan out
        further through ``repro.core.parallel`` worker *processes* when
        its request asks for ``jobs > 1``.
    queue_limit:
        Bound on admitted-but-undispatched jobs; beyond it requests are
        shed with 429 + ``Retry-After``.
    batch_window_ms / batch_max:
        Micro-batch dispatch window (0 disables batching).
    cache_path:
        Persistent :class:`repro.cache.ScheduleCache` consulted before
        every search and taught after each one.
    tracer:
        :class:`repro.obs.Tracer` receiving ``serve.*`` events.
    fault_plan:
        :class:`repro.robust.ServeFaultPlan`; defaults to whatever
        ``REPRO_SERVE_FAULT`` arms (or nothing).
    retry_after_s:
        The backoff hint attached to shed responses.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workers=1,
        queue_limit: int = 16,
        batch_window_ms: float = 2.0,
        batch_max: int = 8,
        cache_path: Optional[str] = None,
        tracer=None,
        fault_plan: Optional[ServeFaultPlan] = None,
        retry_after_s: float = 1.0,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.workers = resolve_jobs(workers)
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        if batch_window_ms < 0:
            raise ValueError(
                f"batch_window_ms must be >= 0, got {batch_window_ms}"
            )
        if batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {batch_max}")
        if retry_after_s <= 0:
            raise ValueError(
                f"retry_after_s must be positive, got {retry_after_s}"
            )
        self.queue_limit = int(queue_limit)
        self.batch_window_ms = float(batch_window_ms)
        self.batch_max = int(batch_max)
        self.retry_after_s = float(retry_after_s)
        self.metrics = ServeMetrics()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.cache = (
            ScheduleCache(cache_path, tracer=self.tracer)
            if cache_path
            else None
        )
        if fault_plan is None:
            armed = os.environ.get(SERVE_FAULT_ENV)
            fault_plan = parse_serve_fault(armed) if armed else None
        elif isinstance(fault_plan, ServeFaultSpec):
            # Accept a bare spec (the slow_job/crash_job helpers) too.
            fault_plan = ServeFaultPlan(fault_plan)
        self.fault_plan = fault_plan

        self._table = CoalesceTable()
        self._slots: Optional[asyncio.Semaphore] = None
        self._queue: Optional[asyncio.Queue] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._draining = False
        self._drained: Optional[asyncio.Event] = None
        self._admitted = 0
        self._in_flight = 0
        self._open_conns = 0

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> int:
        """Bind the listener and start the dispatcher; returns the port."""
        self._loop = asyncio.get_running_loop()
        if self.cache is not None:
            # Self-heal before serving: corrupt lines (torn appends from
            # a SIGKILLed predecessor, disk bit-flips) are counted,
            # quarantined to the sidecar, and compacted away — so this
            # instance starts from a store that is clean by construction.
            await self._loop.run_in_executor(None, self.cache.heal)
        self._queue = asyncio.Queue(maxsize=self.queue_limit)
        self._slots = asyncio.Semaphore(self.workers)
        self._drained = asyncio.Event()
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve"
        )
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._dispatcher = asyncio.ensure_future(self._dispatch_loop())
        return self.port

    async def drain(self) -> None:
        """Stop accepting, finish everything admitted, release the pool.

        Idempotent; concurrent callers all return once the first drain
        completes.  The guarantee: every job admitted before the drain
        started produces a response, and every open connection gets to
        write it.
        """
        if self._draining:
            await self._drained.wait()
            return
        self._draining = True
        self.tracer.event(
            EVENT_SERVE_DRAIN,
            queued=self._queue.qsize() if self._queue else 0,
            in_flight=self._in_flight,
        )
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        while (
            (self._queue is not None and not self._queue.empty())
            or len(self._table)
            or self._in_flight
            or self._open_conns
        ):
            await asyncio.sleep(0.02)
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        self._drained.set()

    def run(self) -> int:
        """Blocking entry point for the CLI: serve until SIGTERM/SIGINT.

        Returns 0 after a clean drain.  Startup errors (e.g. the port is
        taken) propagate as :class:`OSError` for the CLI to render.
        """

        async def _main() -> None:
            await self.start()
            loop = asyncio.get_running_loop()

            def _begin_drain() -> None:
                asyncio.ensure_future(self.drain())

            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(sig, _begin_drain)
                except (NotImplementedError, RuntimeError):
                    pass  # non-unix event loops: ctrl-C still KeyboardInterrupts
            print(
                f"repro serve: listening on http://{self.host}:{self.port} "
                f"(workers={self.workers}, queue_limit={self.queue_limit})",
                file=sys.stderr,
                flush=True,
            )
            await self._drained.wait()

        asyncio.run(_main())
        print("repro serve: drained, bye", file=sys.stderr, flush=True)
        from repro.core.exitcodes import EXIT_OK

        return EXIT_OK

    # -- HTTP plumbing -------------------------------------------------

    async def _handle_conn(self, reader, writer) -> None:
        self._open_conns += 1
        try:
            try:
                method, path, headers, body = await asyncio.wait_for(
                    read_request(reader), timeout=IO_TIMEOUT_S
                )
            except HttpViolation as exc:
                await write_response(
                    writer, exc.status, error_payload(exc.status, str(exc))
                )
                return
            except (
                asyncio.TimeoutError,
                asyncio.IncompleteReadError,
                ConnectionError,
                ValueError,
            ):
                return  # torn or silent connection: nothing to answer
            status, payload, extra = await self._route(
                method, path, headers, body
            )
            await write_response(writer, status, payload, extra)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._open_conns -= 1
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- routing -------------------------------------------------------

    def healthz_snapshot(self) -> Dict:
        """The live enriched ``/healthz`` body (``repro-serve-v1``)."""
        return healthz_payload(
            draining=self._draining,
            queue_depth=self._queue.qsize() if self._queue else 0,
            queue_limit=self.queue_limit,
            in_flight=self._in_flight,
            admitted=self._admitted,
        )

    async def _route(
        self, method: str, path: str, headers: Dict[str, str], body: bytes
    ) -> Tuple[int, Dict, Optional[Dict[str, str]]]:
        if path == "/healthz":
            if method != "GET":
                return 405, error_payload(405, "healthz is GET-only"), None
            # The body is the router's health-gating input, so it is
            # always the full snapshot; a draining worker still answers
            # 503 so bare liveness probes keep their old meaning.
            if self._draining:
                return 503, self.healthz_snapshot(), self._retry_header()
            return 200, self.healthz_snapshot(), None
        if path == "/metrics":
            if method != "GET":
                return 405, error_payload(405, "metrics is GET-only"), None
            return 200, self.metrics_snapshot(), None
        if path == "/v1/optimize":
            if method != "POST":
                return 405, error_payload(405, "optimize is POST-only"), None
            return await self._handle_optimize(body, headers)
        return 404, error_payload(404, f"unknown path {path!r}"), None

    def _retry_header(self) -> Dict[str, str]:
        return {"Retry-After": str(max(1, math.ceil(self.retry_after_s)))}

    def metrics_snapshot(self) -> Dict:
        """The live ``repro-serve-metrics-v1`` document."""
        tracer_counters = {}
        if getattr(self.tracer, "enabled", False):
            try:
                tracer_counters = self.tracer.counters()
            except Exception:  # pragma: no cover - defensive
                tracer_counters = {}
        return self.metrics.snapshot(
            queue_depth=self._queue.qsize() if self._queue else 0,
            queue_limit=self.queue_limit,
            in_flight=self._in_flight,
            draining=self._draining,
            cache=self.cache.stats.to_dict() if self.cache else None,
            tracer_counters=tracer_counters,
        )

    # -- admission -----------------------------------------------------

    async def _handle_optimize(
        self, body: bytes, headers: Optional[Dict[str, str]] = None
    ) -> Tuple[int, Dict, Optional[Dict[str, str]]]:
        arrived = time.perf_counter()
        self.metrics.bump("requests_total")
        if self._draining:
            self.metrics.bump("shed")
            self.tracer.event(EVENT_SERVE_SHED, reason="draining")
            return (
                503,
                error_payload(
                    503,
                    "server is draining; retry against a fresh instance",
                    retry_after_s=self.retry_after_s,
                ),
                self._retry_header(),
            )
        request = None
        try:
            request = parse_request(json.loads(body.decode("utf-8")))
            case, arch, key = identify_request(request)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            return 400, error_payload(400, f"request is not JSON: {exc}"), None
        except ServeError as exc:
            return 400, render_for(request, error_payload(400, str(exc))), None
        except ValidationError as exc:
            # A spec that does not lower is the caller's bug, not ours:
            # 400 with the machine-readable invalid_spec tag, never 500.
            return (
                400,
                render_for(
                    request,
                    error_payload(
                        400, str(exc), reason=REASON_INVALID_SPEC
                    ),
                ),
                None,
            )

        # The fleet router charges the end-to-end budget once at its own
        # admission and forwards only the *remainder* here; when the
        # header is present it overrides the body's deadline_ms (which
        # the router already spent from).  Exhausted work is refused
        # before it can queue — searching for a caller whose budget is
        # gone wastes a worker and can only produce a late answer.
        budget_ms = request.deadline_ms
        raw_budget = (headers or {}).get(DEADLINE_HEADER)
        if raw_budget is not None:
            try:
                budget_ms = float(raw_budget)
            except ValueError:
                return (
                    400,
                    error_payload(
                        400,
                        f"malformed {DEADLINE_HEADER} header: {raw_budget!r}",
                    ),
                    None,
                )
        if budget_ms is not None and budget_ms <= 0:
            self.metrics.bump("deadline_expired")
            self.metrics.bump("responses_error")
            payload = error_payload(
                504,
                "end-to-end deadline budget exhausted before admission",
                reason=REASON_DEADLINE_EXPIRED,
            )
            payload["benchmark"] = request.label
            payload["platform"] = request.platform
            self.tracer.event(
                EVENT_SERVE_REQUEST,
                benchmark=request.label,
                platform=request.platform,
                served_by="error",
                status=504,
                elapsed_ms=round(
                    (time.perf_counter() - arrived) * 1000.0, 3
                ),
            )
            return 504, render_for(request, payload), None

        job = self._table.lookup(key)
        coalesced = job is not None
        if coalesced:
            self.metrics.bump("coalesced")
        else:
            self._admitted += 1
            job = Job(
                key=key,
                request=request,
                case=case,
                future=self._loop.create_future(),
                index=self._admitted,
                deadline=(
                    Deadline(budget_ms / 1000.0, label="repro.serve")
                    if budget_ms is not None
                    else None
                ),
            )
            try:
                self._queue.put_nowait(job)
            except asyncio.QueueFull:
                self.metrics.bump("shed")
                self.tracer.event(
                    EVENT_SERVE_SHED,
                    reason="queue_full",
                    queue_limit=self.queue_limit,
                )
                return (
                    429,
                    error_payload(
                        429,
                        f"admission queue is full "
                        f"({self.queue_limit} jobs); retry after "
                        f"{self.retry_after_s:g}s",
                        retry_after_s=self.retry_after_s,
                    ),
                    self._retry_header(),
                )
            self._table.admit(job)

        outcome = await asyncio.shield(job.future)
        elapsed_ms = (time.perf_counter() - arrived) * 1000.0
        self.metrics.observe_latency(elapsed_ms)
        if outcome[0] == "ok":
            payload = render_for(request, dict(outcome[1]))
            if coalesced:
                payload["served_by"] = SERVED_BY_COALESCED
            self.metrics.bump("responses_ok")
            self.tracer.event(
                EVENT_SERVE_REQUEST,
                benchmark=request.label,
                platform=request.platform,
                served_by=payload["served_by"],
                status=200,
                elapsed_ms=round(elapsed_ms, 3),
            )
            return 200, payload, None
        _tag, status, message, reason = outcome
        self.metrics.bump("responses_error")
        self.tracer.event(
            EVENT_SERVE_REQUEST,
            benchmark=request.label,
            platform=request.platform,
            served_by="error",
            status=status,
            elapsed_ms=round(elapsed_ms, 3),
        )
        payload = error_payload(status, message, reason=reason)
        if status == 504:
            # Deadline 504s keep their attribution: a timed-out caller
            # (or the chaos harness) still learns which request died.
            payload["benchmark"] = request.label
            payload["platform"] = request.platform
        return status, render_for(request, payload), None

    # -- dispatch ------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job = await self._queue.get()
            batch = [job]
            if self.batch_window_ms > 0 and self.batch_max > 1:
                window_ends = loop.time() + self.batch_window_ms / 1000.0
                while len(batch) < self.batch_max:
                    timeout = window_ends - loop.time()
                    if timeout <= 0:
                        break
                    try:
                        batch.append(
                            await asyncio.wait_for(self._queue.get(), timeout)
                        )
                    except asyncio.TimeoutError:
                        break
            for item in batch:
                # Gate on a free worker slot so the bounded queue stays
                # the real backpressure boundary: without this the
                # dispatcher would swallow the queue into an unbounded
                # set of waiting futures and shedding would never fire.
                await self._slots.acquire()
                self._in_flight += 1
                asyncio.ensure_future(self._run_job(item))

    async def _run_job(self, job: Job) -> None:
        try:
            payload = await self._loop.run_in_executor(
                self._pool, self._execute, job
            )
            outcome = ("ok", payload)
        except DeadlineExceeded as exc:
            self.metrics.bump("deadline_expired")
            outcome = (
                "error",
                504,
                f"deadline exceeded: {exc}",
                REASON_DEADLINE_EXPIRED,
            )
        except ValidationError as exc:
            # Safety net: malformed specs are normally rejected at
            # admission, but if one slips into the worker it is still
            # the caller's bug — a 400, never a 500.
            outcome = ("error", 400, str(exc), REASON_INVALID_SPEC)
        except ReproError as exc:
            outcome = ("error", 500, str(exc), None)
        except Exception as exc:  # pragma: no cover - last-resort guard
            outcome = ("error", 500, f"internal error: {exc}", None)
        finally:
            self._in_flight -= 1
            self._slots.release()
        self._table.complete(job.key)
        if not job.future.done():
            job.future.set_result(outcome)

    # -- the worker (runs on pool threads) -----------------------------

    def _execute(self, job: Job) -> Dict:
        if self.fault_plan is not None:
            spec = self.fault_plan.spec_for_job()
            if spec is not None:
                self.metrics.bump("faults_injected")
                if spec.kind == KIND_SLOW:
                    time.sleep(spec.seconds)
                elif spec.kind == KIND_CRASH:
                    raise ReproError(
                        "injected fault: serve worker crashed before the "
                        "search"
                    )
        started = time.perf_counter()
        request = job.request
        arch = platform_by_name(request.platform)
        schedules: List[Tuple[str, Dict]] = []
        sources: List[str] = []
        for stage in job.case.pipeline:
            if job.deadline is not None:
                job.deadline.check("serve queue")
            hit = (
                self.cache.get(stage, arch, request.options)
                if self.cache is not None
                else None
            )
            if hit is not None:
                self.metrics.bump("cache_hits")
                schedules.append((stage.name, schedule_to_dict(hit)))
                sources.append(SERVED_BY_CACHE)
                continue
            if self.cache is not None:
                self.metrics.bump("cache_misses")
            self.metrics.bump("searches")
            remaining_ms = None
            if job.deadline is not None:
                remaining_ms = max(job.deadline.remaining(), 0.0) * 1000.0
                if remaining_ms <= 0:
                    job.deadline.check("serve dispatch")
            result = api.optimize(
                api.OptimizeRequest(
                    func=stage,
                    arch=arch,
                    deadline_ms=remaining_ms,
                    options=OptimizeOptions(
                        jobs=request.jobs, **request.options
                    ),
                )
            )
            if self.cache is not None:
                self.cache.put(
                    stage,
                    arch,
                    request.options,
                    result.schedule,
                    meta={
                        "origin": "serve",
                        "benchmark": request.label,
                        "platform": request.platform,
                    },
                )
            schedules.append((stage.name, schedule_to_dict(result.schedule)))
            sources.append(SERVED_BY_SEARCH)
        served_by = (
            SERVED_BY_CACHE
            if sources and all(s == SERVED_BY_CACHE for s in sources)
            else SERVED_BY_SEARCH
        )
        return result_payload(
            request,
            job.key,
            schedules,
            served_by=served_by,
            elapsed_ms=(time.perf_counter() - started) * 1000.0,
            stage_sources=sources,
        )
