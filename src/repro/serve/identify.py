"""Request identity: from a wire request to its coalescing/shard key.

Both the worker server (for coalescing and the schedule cache) and the
fleet router (for consistent-hash shard routing) must compute the *same*
identity for one request, or shard-local caches stop being
warm-by-construction.  Centralizing the computation here is what makes
that an invariant instead of a convention: the key is built from the
content fingerprints of every pipeline stage, the platform fingerprint,
and the canonical options fingerprint — exactly the inputs that
determine the chosen schedules (see :mod:`repro.cache.fingerprint`).

Spec targets (repro-serve-v1.1) are lowered here with
:func:`repro.frontend.lower_spec` and fingerprinted from the *lowered*
Funcs — a spec-submission and a benchmark/ir-submission of the same
kernel therefore produce the same key, coalesce onto one in-flight
computation, hit the same cache entries, and route to the same shard.
A malformed spec raises :class:`~repro.util.ValidationError`, which the
server maps to HTTP 400 with ``reason="invalid_spec"`` (never a 500).
"""

from __future__ import annotations

from typing import Tuple

from repro.arch import platform_by_name
from repro.bench import EXTRAS, SUITE, make_benchmark, make_extra, size_for
from repro.cache.fingerprint import func_fingerprint
from repro.serve.schema import ServeRequest, coalesce_key
from repro.util import ServeError

__all__ = ["identify_request"]


def _spec_case(request: ServeRequest):
    """Lower a v1.1 spec target into a benchmark-shaped case.

    ``ValidationError`` from the frontend propagates untouched — the
    serve layers give it a 400 + ``invalid_spec`` mapping.
    """
    from repro.bench.suite import BenchmarkCase
    from repro.frontend import lower_spec

    lowered = lower_spec(
        request.spec,
        request.dims or {},
        dtypes=request.dtypes,
        params=request.params,
    )
    dims = lowered.dims
    return BenchmarkCase(
        name=request.label,
        description="kernel spec",
        pipeline=lowered.pipeline,
        problem_size="x".join(str(v) for v in dims.values()),
    )


def identify_request(request: ServeRequest) -> Tuple[object, object, str]:
    """Build the benchmark case, platform, and identity key of a request.

    Returns ``(case, arch, key)``.  Raises
    :class:`~repro.util.ServeError` with an actionable message for an
    unknown benchmark or platform (a 400), and
    :class:`~repro.util.ValidationError` for a spec that does not lower
    (also a 400, tagged ``invalid_spec``).
    """
    if request.spec is not None:
        case = _spec_case(request)
    else:
        name = request.benchmark
        try:
            if name in SUITE:
                case = make_benchmark(
                    name, **size_for(name, small=request.fast)
                )
            elif name in EXTRAS:
                case = make_extra(name)
            else:
                raise ServeError(
                    f"unknown benchmark {name!r}; known: "
                    f"{sorted(SUITE) + sorted(EXTRAS)}"
                )
        except (KeyError, ValueError) as exc:
            raise ServeError(
                f"cannot build benchmark {name!r}: {exc}"
            ) from None
    try:
        arch = platform_by_name(request.platform)
    except KeyError:
        raise ServeError(
            f"unknown platform {request.platform!r}; see "
            f"`python -m repro list`"
        ) from None
    key = coalesce_key(
        [func_fingerprint(stage) for stage in case.pipeline],
        arch.fingerprint(),
        request.options,
    )
    return case, arch, key
