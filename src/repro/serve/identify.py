"""Request identity: from a wire request to its coalescing/shard key.

Both the worker server (for coalescing and the schedule cache) and the
fleet router (for consistent-hash shard routing) must compute the *same*
identity for one request, or shard-local caches stop being
warm-by-construction.  Centralizing the computation here is what makes
that an invariant instead of a convention: the key is built from the
content fingerprints of every pipeline stage, the platform fingerprint,
and the canonical options fingerprint — exactly the inputs that
determine the chosen schedules (see :mod:`repro.cache.fingerprint`).
"""

from __future__ import annotations

from typing import Tuple

from repro.arch import platform_by_name
from repro.bench import EXTRAS, SUITE, make_benchmark, make_extra, size_for
from repro.cache.fingerprint import func_fingerprint
from repro.serve.schema import ServeRequest, coalesce_key
from repro.util import ServeError

__all__ = ["identify_request"]


def identify_request(request: ServeRequest) -> Tuple[object, object, str]:
    """Build the benchmark case, platform, and identity key of a request.

    Returns ``(case, arch, key)``.  Raises
    :class:`~repro.util.ServeError` with an actionable message for an
    unknown benchmark or platform — servers map these to 400 responses.
    """
    name = request.benchmark
    try:
        if name in SUITE:
            case = make_benchmark(name, **size_for(name, small=request.fast))
        elif name in EXTRAS:
            case = make_extra(name)
        else:
            raise ServeError(
                f"unknown benchmark {name!r}; known: "
                f"{sorted(SUITE) + sorted(EXTRAS)}"
            )
    except (KeyError, ValueError) as exc:
        raise ServeError(f"cannot build benchmark {name!r}: {exc}") from None
    try:
        arch = platform_by_name(request.platform)
    except KeyError:
        raise ServeError(
            f"unknown platform {request.platform!r}; see "
            f"`python -m repro list`"
        ) from None
    key = coalesce_key(
        [func_fingerprint(stage) for stage in case.pipeline],
        arch.fingerprint(),
        request.options,
    )
    return case, arch, key
