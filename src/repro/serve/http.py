"""Minimal HTTP/1.1 plumbing shared by the serve and fleet layers.

One wire discipline, three consumers: :class:`repro.serve.OptimizeServer`
(a worker), :class:`repro.fleet.FleetRouter` (the front router proxying
to workers), and :class:`repro.serve.ServeClient` (the blocking client).
Every exchange is one request per connection (``Connection: close``),
JSON bodies only, tight size ceilings — the protocol is an
implementation detail of this repo, not a general web server.

The async half (:func:`read_request` / :func:`write_response`) runs on
an event loop against ``asyncio`` stream pairs; the sync half
(:func:`format_request` / :func:`parse_response`) is shared with the
blocking client, so a response parsed by the router is parsed by exactly
the code the client uses — one grammar, no drift.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple

from repro.util import ServeError

__all__ = [
    "ChunkDecoder",
    "DEADLINE_HEADER",
    "HttpViolation",
    "IO_TIMEOUT_S",
    "MAX_BODY_BYTES",
    "MAX_HEADER_BYTES",
    "REASONS",
    "forward",
    "format_request",
    "parse_response",
    "parse_response_head",
    "read_request",
    "write_chunk",
    "write_chunked_end",
    "write_chunked_head",
    "write_response",
]

#: End-to-end deadline budget header.  The fleet router charges a
#: request's ``deadline_ms`` once at its own admission and forwards the
#: *remaining* budget under this header on every proxy leg (including
#: failover successors), so a failed-over request can never double-spend
#: its deadline; a worker seeing the header uses it instead of the
#: body's ``deadline_ms`` and refuses already-exhausted work with 504.
DEADLINE_HEADER = "x-repro-deadline-ms"

REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Socket-level ceilings; requests are small JSON documents, so anything
#: beyond these is a protocol error, not a legitimate payload.
MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 1024 * 1024
IO_TIMEOUT_S = 30.0


class HttpViolation(Exception):
    """A malformed request we can still answer politely."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


async def read_request(reader) -> Tuple[str, str, Dict[str, str], bytes]:
    """Read one request head + body from an asyncio stream reader.

    Returns ``(method, path, headers, body)``; raises
    :class:`HttpViolation` for protocol errors the caller can answer,
    :class:`ConnectionError` for torn/silent connections.
    """
    request_line = await reader.readline()
    if not request_line:
        raise ConnectionError("empty request")
    try:
        method, path, _version = (
            request_line.decode("latin-1").strip().split(" ", 2)
        )
    except ValueError:
        raise HttpViolation(400, "malformed request line") from None
    headers: Dict[str, str] = {}
    total = len(request_line)
    while True:
        line = await reader.readline()
        total += len(line)
        if total > MAX_HEADER_BYTES:
            raise HttpViolation(400, "request headers too large")
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpViolation(400, "malformed Content-Length") from None
        if length > MAX_BODY_BYTES:
            raise HttpViolation(
                413, f"request body over {MAX_BODY_BYTES} bytes"
            )
        body = await reader.readexactly(length)
    return method.upper(), path, headers, body


async def write_response(
    writer,
    status: int,
    payload: Dict,
    extra_headers: Optional[Dict[str, str]] = None,
) -> None:
    """Write one JSON response to an asyncio stream writer."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    writer.write(head + body)
    await writer.drain()


async def write_chunked_head(
    writer,
    status: int = 200,
    extra_headers: Optional[Dict[str, str]] = None,
) -> None:
    """Start a chunked NDJSON response (the tune stream).

    Unlike :func:`write_response` there is no Content-Length — records
    are written as they settle via :func:`write_chunk` and the stream is
    terminated by :func:`write_chunked_end`.  Still one response per
    connection (``Connection: close``).
    """
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/x-ndjson",
        "Transfer-Encoding: chunked",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
    await writer.drain()


async def write_chunk(writer, payload: Dict) -> None:
    """Write one NDJSON record as one HTTP chunk (flushes immediately)."""
    line = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    writer.write(f"{len(line):x}\r\n".encode("latin-1") + line + b"\r\n")
    await writer.drain()


async def write_chunked_end(writer) -> None:
    """Terminate a chunked response (the zero-length chunk)."""
    writer.write(b"0\r\n\r\n")
    await writer.drain()


def parse_response_head(head: bytes) -> Tuple[int, Dict[str, str]]:
    """Parse a response's status line + headers (no body)."""
    lines = head.decode("latin-1").split("\r\n")
    try:
        status = int(lines[0].split(" ", 2)[1])
    except (IndexError, ValueError):
        raise ServeError(f"malformed status line {lines[0]!r}") from None
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers


class ChunkDecoder:
    """Incremental ``Transfer-Encoding: chunked`` body decoder.

    Feed raw socket bytes in as they arrive; complete chunk payloads
    come back out, in order.  The shared grammar for the blocking
    client's tune-stream reader — kept here beside the server-side
    writers so both halves of the protocol live in one module.
    """

    def __init__(self) -> None:
        self._buffer = b""
        self.done = False

    def feed(self, data: bytes) -> list:
        """Consume bytes; return the list of completed chunk payloads."""
        self._buffer += data
        out = []
        while not self.done:
            head, sep, rest = self._buffer.partition(b"\r\n")
            if not sep:
                break
            try:
                size = int(head.split(b";", 1)[0].strip() or b"0", 16)
            except ValueError:
                raise ServeError(
                    f"malformed chunk size {head!r}"
                ) from None
            if size == 0:
                self.done = True
                self._buffer = b""
                break
            if len(rest) < size + 2:
                break  # whole chunk not here yet
            out.append(rest[:size])
            self._buffer = rest[size + 2:]
        return out


def format_request(
    method: str,
    path: str,
    host: str,
    port: int,
    body: bytes,
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """Serialize one request head (the body is appended by the caller)."""
    lines = [
        f"{method} {path} HTTP/1.1",
        f"Host: {host}:{port}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def parse_response(raw: bytes) -> Tuple[int, Dict[str, str], Dict]:
    """Parse one complete response into ``(status, headers, json_body)``.

    Raises :class:`ConnectionError` when the peer closed without
    answering, :class:`~repro.util.ServeError` when the answer is not
    protocol-shaped.
    """
    if not raw:
        raise ConnectionError("server closed the connection without a response")
    head, _, rest = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    try:
        status = int(lines[0].split(" ", 2)[1])
    except (IndexError, ValueError):
        raise ServeError(f"malformed status line {lines[0]!r}") from None
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    length = headers.get("content-length")
    payload = rest if length is None else rest[: int(length)]
    try:
        body = json.loads(payload.decode("utf-8")) if payload else {}
    except (json.JSONDecodeError, UnicodeDecodeError):
        raise ServeError(
            f"server returned non-JSON body (HTTP {status})"
        ) from None
    if not isinstance(body, dict):
        raise ServeError(f"server returned non-object body (HTTP {status})")
    return status, headers, body


async def forward(
    host: str,
    port: int,
    method: str,
    path: str,
    body: bytes,
    *,
    timeout_s: float = 120.0,
    extra_headers: Optional[Dict[str, str]] = None,
) -> Tuple[int, Dict[str, str], Dict]:
    """One async round-trip to a peer server (the router's proxy leg).

    Raises :class:`ConnectionError` when the peer is unreachable or the
    connection dies mid-exchange — exactly the signal the router's
    failover logic keys on.
    """
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout=timeout_s
        )
    except (OSError, asyncio.TimeoutError) as exc:
        raise ConnectionError(
            f"cannot reach worker at {host}:{port}: {exc}"
        ) from exc
    try:
        writer.write(
            format_request(method, path, host, port, body, extra_headers)
            + body
        )
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout=timeout_s)
    except (OSError, asyncio.TimeoutError, asyncio.IncompleteReadError) as exc:
        raise ConnectionError(
            f"connection to worker at {host}:{port} died mid-request: {exc}"
        ) from exc
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    return parse_response(raw)
