"""Analytic terms of the multi-stream contention model.

Why multi-striding wins, in the simulator's own units: a stream engine can
run at most ``max_distance`` lines ahead of demand, and a prefetch stays in
flight for ``latency_accesses`` demand accesses.  A *single* stream whose
per-line demand gap is ``g`` accesses can therefore hide at most
``max_distance * g`` accesses of latency — when that product falls short of
``latency_accesses`` every prefetch lands *late*.  Splitting the stream
into ``K`` interleaved sub-streams multiplies the per-stream gap by ``K``
without changing the total traffic, which is exactly the slack the engines
need (Blom et al., "Multi-Strided Access Patterns to Boost Hardware
Prefetching").

The loss mode is engine contention: the detector holds ``n_engines``
page-keyed engines with LRU eviction.  Multi-striding a statement with
``R`` strided references asks for ``K * R`` concurrent engines; once that
exceeds the pool, the round-robin access order evicts every engine before
its next touch and nothing ever trains — strictly worse than not
multi-striding.  There is a second, geometric constraint: sub-streams must
sit in *distinct* 4 KiB pages (engines are page-keyed), so each chunk of
the split iteration space has to span at least one page per reference.

This module prices those two constraints.  It deliberately stops there:
the strategy classifier (:mod:`repro.multistride.strategy`) decides between
tile-only / multistride-only / combined by *simulating* the candidates, so
the analytic model only has to pick a stream count and reject infeasible
rewrites, not rank strategies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.cachesim.prefetch import StreamModelParams
from repro.util import ceil_div

#: Stream counts the search considers, in increasing order.  Powers of two
#: keep the split chunks aligned with the candidate tile sizes elsewhere in
#: the repo; 8 equals the default engine pool, the most a single-reference
#: statement can productively occupy.
STREAM_CANDIDATES: Tuple[int, ...] = (2, 4, 8)


@dataclass(frozen=True)
class StreamEstimate:
    """Feasibility record for one candidate stream count.

    Attributes
    ----------
    streams:
        The candidate ``K`` (already clamped to the loop extent).
    chunk_iters:
        Iterations per sub-stream chunk, ``ceil(extent / streams)``.
    active_engines:
        Page-streams demanding engines concurrently:
        ``strided_groups * streams + constant_groups``.
    separation_lines:
        Cache lines between the chunk starts of adjacent sub-streams of
        the *tightest* strided reference.
    fits_engines:
        ``active_engines <= n_engines`` — no LRU thrash.
    fits_pages:
        ``separation_lines >= page_lines`` — sub-streams train distinct
        page-keyed engines.
    """

    streams: int
    chunk_iters: int
    active_engines: int
    separation_lines: int
    fits_engines: bool
    fits_pages: bool

    @property
    def feasible(self) -> bool:
        return self.fits_engines and self.fits_pages


def covers_latency(gap_accesses: float, params: StreamModelParams) -> bool:
    """Can a stream with this per-line demand gap hide the prefetch
    latency?  (``max_distance`` lines of run-ahead, each ``gap`` accesses
    apart, must span ``latency_accesses``.)  This is the inequality the
    whole technique family pivots on."""
    return params.max_distance * gap_accesses >= params.latency_accesses


def active_engines(
    strided_groups: int, constant_groups: int, streams: int
) -> int:
    """Concurrent page-streams after multi-striding: every strided
    reference group becomes ``streams`` independent page walks; groups
    that do not move along the split loop keep their single page."""
    return strided_groups * streams + constant_groups


def estimate(
    streams: int,
    *,
    extent: int,
    strided_groups: int,
    constant_groups: int,
    min_stride_elems: int,
    dtype_size: int,
    line_size: int,
    params: StreamModelParams,
) -> StreamEstimate:
    """Price one candidate stream count against the two constraints."""
    k = min(streams, extent)
    chunk = ceil_div(extent, k)
    separation = (chunk * min_stride_elems * dtype_size) // line_size
    engines = active_engines(strided_groups, constant_groups, k)
    return StreamEstimate(
        streams=k,
        chunk_iters=chunk,
        active_engines=engines,
        separation_lines=separation,
        fits_engines=engines <= params.n_engines,
        fits_pages=separation >= params.page_lines,
    )


def choose_streams(
    *,
    extent: int,
    strided_groups: int,
    constant_groups: int,
    min_stride_elems: int,
    dtype_size: int,
    line_size: int,
    candidates: Sequence[int] = STREAM_CANDIDATES,
    params: Optional[StreamModelParams] = None,
) -> Optional[StreamEstimate]:
    """The largest feasible stream count, or ``None``.

    Largest because more concurrent engines means more memory-level
    parallelism (the paper's Fig. 4 trend) — the engine-pool constraint is
    what stops the growth, and it is checked per candidate.
    """
    params = params or StreamModelParams()
    best: Optional[StreamEstimate] = None
    for streams in sorted(candidates):
        if streams < 2:
            continue
        est = estimate(
            streams,
            extent=extent,
            strided_groups=strided_groups,
            constant_groups=constant_groups,
            min_stride_elems=min_stride_elems,
            dtype_size=dtype_size,
            line_size=line_size,
            params=params,
        )
        if est.feasible:
            best = est
    return best
