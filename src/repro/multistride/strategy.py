"""The three-way strategy classifier: tile-only / multistride-only / combined.

The original paper's optimizer picks tile sizes; the multi-striding paper
shows a second, orthogonal lever.  For a given kernel the best choice is an
empirical question, so the classifier prices up to three concrete
candidates on a simulated machine with the multi-stream detector enabled:

* ``tile`` — the schedule the main optimizer produced (which may in fact
  be untransformed; the label names the *strategy family*, not a literal
  tiling);
* ``multistride`` — the standard untransformed schedule with the best
  feasible ``multistride(loop, K)`` applied: prefetch-friendliness instead
  of cache blocking;
* ``combined`` — the main optimizer's schedule with multistride applied on
  top (blocking for reuse *and* interleaved streams for the residual
  streaming traffic).

Decision rule: the incumbent ``tile`` strategy wins unless a challenger is
more than :data:`TIE_MARGIN` cheaper (schedule churn needs to pay for
itself), and ``combined`` must *strictly* beat ``multistride`` (given equal
cost, the simpler rewrite wins).  Pricing runs on a dedicated
:class:`~repro.sim.machine.Machine` with a reduced, fixed line budget so a
decision costs three short simulations and is bit-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Dict, Mapping, Optional

from repro.arch import ArchSpec
from repro.cachesim.prefetch import StreamModelParams
from repro.ir.func import Func
from repro.ir.schedule import LoopKind, Schedule
from repro.multistride.search import (
    MultistridePlan,
    StreamRequest,
    apply_multistride,
    plan_multistride,
)
from repro.obs.events import EVENT_MULTISTRIDE
from repro.sim.machine import Machine

#: Line budget of the pricing simulations.  Small enough that a decision
#: is three sub-second simulations, large enough to cover several pages
#: per stream (the regime where late-vs-on-time prefetches diverge).
PRICING_LINE_BUDGET = 40_000

#: A challenger must undercut the incumbent by this fraction; below it the
#: strategies are considered tied and the incumbent (no rewrite) wins.
TIE_MARGIN = 0.02

STRATEGY_TILE = "tile"
STRATEGY_MULTISTRIDE = "multistride"
STRATEGY_COMBINED = "combined"


@dataclass(frozen=True)
class MultistrideDecision:
    """Outcome of the classifier for one kernel.

    ``costs`` maps every *priced* strategy to its modeled milliseconds;
    strategies with no feasible candidate are absent.  ``schedule`` is the
    winning schedule — the caller's own object when ``tile`` wins, a fresh
    clone otherwise.
    """

    strategy: str
    schedule: Schedule
    costs: Mapping[str, float]
    streams: Optional[int] = None
    loop: Optional[str] = None
    plan: Optional[MultistridePlan] = field(default=None, repr=False)

    def describe(self) -> str:
        priced = ", ".join(
            f"{name} {self.costs[name]:.4f} ms"
            for name in (STRATEGY_TILE, STRATEGY_MULTISTRIDE, STRATEGY_COMBINED)
            if name in self.costs
        )
        chosen = self.strategy
        if self.streams is not None and self.strategy != STRATEGY_TILE:
            chosen = f"{self.strategy} ({self.loop} x{self.streams})"
        return f"{chosen} [{priced}]"


def pricing_machine(
    arch: ArchSpec,
    *,
    params: Optional[StreamModelParams] = None,
    line_budget: int = PRICING_LINE_BUDGET,
) -> Machine:
    """The machine every strategy is priced on: multi-stream detector
    enabled, fixed reduced budget.  The mef experiment uses the same
    factory so its published table matches the classifier's argmin."""
    return Machine(
        arch,
        line_budget=line_budget,
        stream_model=params or StreamModelParams(),
    )


def _schedule_flags(schedule: Schedule) -> Dict[str, bool]:
    kinds = {loop.kind for loop in schedule.loops()}
    return {
        "parallelize": LoopKind.PARALLEL in kinds,
        "vectorize": LoopKind.VECTORIZED in kinds,
        "nontemporal": schedule.nontemporal,
    }


def decide_strategy(
    func: Func,
    arch: ArchSpec,
    schedule: Schedule,
    *,
    multistride: StreamRequest = "auto",
    tracer=None,
    params: Optional[StreamModelParams] = None,
    machine: Optional[Machine] = None,
) -> MultistrideDecision:
    """Classify one kernel into tile-only / multistride-only / combined.

    ``schedule`` is the main optimizer's output (the ``tile`` incumbent);
    it is never mutated.  ``multistride`` is ``"auto"`` to search stream
    counts or an ``int >= 2`` to fix one.  A custom ``machine`` overrides
    the default pricing machine (it should have a stream model, otherwise
    every candidate prices identically and the incumbent always wins).
    """
    params = params or StreamModelParams()
    machine = machine or pricing_machine(arch, params=params)
    streams: StreamRequest = (
        multistride if isinstance(multistride, int) else "auto"
    )

    # The multistride-only candidate starts from the *standard* plain
    # schedule with the incumbent's parallel/vector/NT choices preserved,
    # so the comparison isolates blocking-vs-striding.
    from repro.core.standard import untransformed_schedule

    plain = untransformed_schedule(func, arch, **_schedule_flags(schedule))

    candidates: Dict[str, Schedule] = {STRATEGY_TILE: schedule}
    plans: Dict[str, MultistridePlan] = {}

    ms_plan = plan_multistride(plain, arch, streams=streams, params=params)
    if ms_plan is not None:
        candidates[STRATEGY_MULTISTRIDE] = apply_multistride(plain, ms_plan)
        plans[STRATEGY_MULTISTRIDE] = ms_plan

    combined_plan = plan_multistride(
        schedule, arch, streams=streams, params=params
    )
    if combined_plan is not None:
        combined = apply_multistride(schedule, combined_plan)
        ms_candidate = candidates.get(STRATEGY_MULTISTRIDE)
        # An untransformed incumbent makes "combined" the same rewrite as
        # multistride-only; don't price the duplicate.
        if ms_candidate is None or combined.describe() != ms_candidate.describe():
            candidates[STRATEGY_COMBINED] = combined
            plans[STRATEGY_COMBINED] = combined_plan

    costs = {
        name: machine.time_funcs([(func, cand)])
        for name, cand in candidates.items()
    }

    choice = STRATEGY_TILE
    threshold = costs[STRATEGY_TILE] * (1.0 - TIE_MARGIN)
    challengers = [
        (costs[name], rank, name)
        for rank, name in enumerate((STRATEGY_MULTISTRIDE, STRATEGY_COMBINED))
        if name in costs and costs[name] < threshold
    ]
    if challengers:
        # min() on (cost, rank): combined wins only by strictly beating
        # multistride — the rank breaks exact ties toward the simpler one.
        choice = min(challengers)[2]

    plan = plans.get(choice)
    decision = MultistrideDecision(
        strategy=choice,
        schedule=candidates[choice],
        costs=MappingProxyType(dict(costs)),
        streams=plan.streams if plan else None,
        loop=plan.loop if plan else None,
        plan=plan,
    )
    if tracer is not None and getattr(tracer, "enabled", False):
        tracer.event(
            EVENT_MULTISTRIDE,
            func=func.name,
            strategy=decision.strategy,
            streams=decision.streams,
            loop=decision.loop,
            **{f"cost_{k}": round(v, 6) for k, v in sorted(costs.items())},
        )
    return decision


__all__ = [
    "MultistrideDecision",
    "PRICING_LINE_BUDGET",
    "STRATEGY_COMBINED",
    "STRATEGY_MULTISTRIDE",
    "STRATEGY_TILE",
    "TIE_MARGIN",
    "decide_strategy",
    "pricing_machine",
]
