"""Multi-striding: interleaved strided sub-streams for prefetch engines.

Reproduces the technique family of Blom et al., "Multi-Strided Access
Patterns to Boost Hardware Prefetching", on top of this repo's scheduling
language and simulator:

* :mod:`repro.multistride.model` — the analytic contention terms: when can
  ``K`` sub-streams hide the prefetch latency, and when do they overflow
  the engine pool;
* :mod:`repro.multistride.search` — where to apply ``multistride(loop, K)``
  on a concrete schedule, and with which ``K``;
* :mod:`repro.multistride.strategy` — the three-way classifier picking
  tile-only / multistride-only / combined per kernel by pricing the
  candidates on a machine with the multi-stream detector enabled.

The package is imported lazily by :mod:`repro.core.optimizer` (only when
the ``multistride`` option is not ``"off"``), keeping the default
optimization path free of any simulator dependency.
"""

from repro.multistride.model import (
    STREAM_CANDIDATES,
    StreamEstimate,
    choose_streams,
    covers_latency,
)
from repro.multistride.search import (
    MultistridePlan,
    apply_multistride,
    clone_schedule,
    loop_strides,
    optimize_multistride,
    plan_multistride,
)
from repro.multistride.strategy import (
    PRICING_LINE_BUDGET,
    STRATEGY_COMBINED,
    STRATEGY_MULTISTRIDE,
    STRATEGY_TILE,
    TIE_MARGIN,
    MultistrideDecision,
    decide_strategy,
    pricing_machine,
)

__all__ = [
    "MultistrideDecision",
    "MultistridePlan",
    "PRICING_LINE_BUDGET",
    "STRATEGY_COMBINED",
    "STRATEGY_MULTISTRIDE",
    "STRATEGY_TILE",
    "STREAM_CANDIDATES",
    "StreamEstimate",
    "TIE_MARGIN",
    "apply_multistride",
    "choose_streams",
    "clone_schedule",
    "covers_latency",
    "decide_strategy",
    "loop_strides",
    "optimize_multistride",
    "plan_multistride",
    "pricing_machine",
]
