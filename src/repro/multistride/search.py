"""Find where (and how wide) to apply ``multistride`` on a schedule.

The planner walks the scheduled loops innermost-first and, for each serial
loop, asks the questions the hardware model cares about:

* Which array references actually *move* when this loop steps?  The
  per-iteration element stride of a scheduled loop is recovered from the
  index-reconstruction trees (a split contributes ``outer * factor``), so
  the answer is exact for any split/reordered nest; loops reached through a
  fusion are skipped (their address walk is not an affine function of one
  counter).
* How many page-keyed prefetch engines would the rewrite occupy?
  References are grouped by the 4 KiB page of their constant offset —
  stencil neighbours like ``a[i][j-1]``/``a[i][j+1]`` share a page (and an
  engine), while ``a[i-1][j]``/``a[i+1][j]`` live rows apart and count
  separately, exactly as the detector sees them.

Only the *innermost serial* loop — the loop whose every inner level is
vectorized or unrolled — is a candidate.  Multi-striding interleaves lines
only at the granularity of the loops *inside* the split loop: put a whole
serial sweep in there and the "sub-streams" execute back to back instead of
interleaved, buying nothing.  If the innermost serial loop is infeasible
(too short for page-distinct chunks, or too many references for the engine
pool) there is no plan; outer loops would be placebo rewrites.  Schedules
are cloned through the serializer before mutation, so planning never
touches the caller's object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.arch import ArchSpec
from repro.cachesim.prefetch import StreamModelParams
from repro.ir.analysis import RefInfo, analyze_definition
from repro.ir.func import Func
from repro.ir.schedule import (
    FusedInner,
    FusedOuter,
    IndexNode,
    LeafIndex,
    LoopKind,
    Schedule,
    SplitIndex,
)
from repro.ir.serialize import schedule_from_dict, schedule_to_dict
from repro.multistride.model import STREAM_CANDIDATES, StreamEstimate, choose_streams

StreamRequest = Union[str, int]


@dataclass(frozen=True)
class MultistridePlan:
    """One concrete multistride rewrite: which loop, how many streams."""

    loop: str
    streams: int
    estimate: StreamEstimate

    def describe(self) -> str:
        est = self.estimate
        return (
            f"multistride({self.loop}, {self.streams}): "
            f"{est.active_engines} engines, "
            f"{est.separation_lines} lines apart"
        )


def clone_schedule(schedule: Schedule) -> Schedule:
    """An independent copy of a schedule (serializer round-trip)."""
    return schedule_from_dict(schedule.func, schedule_to_dict(schedule))


def _loop_coeff(tree: IndexNode, loop: str) -> Optional[int]:
    """Linear coefficient of ``loop`` in an index-reconstruction tree;
    ``None`` when the loop is folded through a fusion (non-linear)."""
    if isinstance(tree, LeafIndex):
        return 1 if tree.loop == loop else 0
    if isinstance(tree, SplitIndex):
        outer = _loop_coeff(tree.outer, loop)
        inner = _loop_coeff(tree.inner, loop)
        if outer is None or inner is None:
            return None
        return outer * tree.factor + inner
    if isinstance(tree, (FusedOuter, FusedInner)):
        return None if loop in tree.loop_names() else 0
    raise TypeError(f"unknown index node {tree!r}")


def _const_elements(ref: RefInfo) -> int:
    """Constant element offset of a reference (stencil displacement)."""
    strides = ref.buffer.strides_elements()
    return sum(ix.offset * strides[dim] for dim, ix in enumerate(ref.indices))


def loop_strides(
    schedule: Schedule, loop: str
) -> Optional[List[Tuple[RefInfo, int]]]:
    """Element stride of every reference per step of a *scheduled* loop.

    Returns ``None`` when the loop's contribution to some index is not
    linear (fused loops), i.e. the loop is not multistride-eligible.
    """
    info = analyze_definition(schedule.func, schedule.definition)
    refs = [info.output] + info.inputs
    trees = schedule.index_trees()
    coeffs: Dict[str, Optional[int]] = {
        var: _loop_coeff(tree, loop) for var, tree in trees.items()
    }
    if any(c is None for c in coeffs.values()):
        return None
    out: List[Tuple[RefInfo, int]] = []
    for ref in refs:
        stride = sum(
            ref.stride_of(var) * coeff for var, coeff in coeffs.items() if coeff
        )
        out.append((ref, stride))
    return out


def _page_groups(
    strides: List[Tuple[RefInfo, int]], page_elems: int
) -> Tuple[int, int, int]:
    """(strided_groups, constant_groups, min_stride_elems) over references
    grouped by the page their constant offset lands in — the granularity
    at which the detector allocates engines."""
    groups: Dict[Tuple[str, int], bool] = {}
    min_stride = 0
    for ref, stride in strides:
        key = (ref.name, _const_elements(ref) // max(1, page_elems))
        groups[key] = groups.get(key, False) or stride != 0
        if stride != 0:
            min_stride = min(min_stride or abs(stride), abs(stride))
    strided = sum(1 for moves in groups.values() if moves)
    constant = len(groups) - strided
    return strided, constant, min_stride


def plan_multistride(
    schedule: Schedule,
    arch: ArchSpec,
    *,
    streams: StreamRequest = "auto",
    params: Optional[StreamModelParams] = None,
) -> Optional[MultistridePlan]:
    """Pick the loop and stream count to multistride, or ``None``.

    ``streams="auto"`` searches :data:`~repro.multistride.model.STREAM_CANDIDATES`
    and keeps the widest feasible count; an integer fixes the count but
    still requires an eligible, page-feasible loop (forcing a count never
    forces a thrashing rewrite onto an unsuitable nest).
    """
    params = params or StreamModelParams()
    line_size = arch.l1.line_size
    dtype_size = schedule.func.dtype.size
    page_elems = params.page_lines * line_size // dtype_size
    candidates = (streams,) if isinstance(streams, int) else STREAM_CANDIDATES
    stream_names = set(schedule.stream_loops())
    target = None
    for loop in reversed(schedule.loops()):
        if loop.kind in (LoopKind.VECTORIZED, LoopKind.UNROLLED):
            continue
        if loop.extent == 1:
            continue  # degenerate level, does not affect interleaving
        # First remaining loop from the inside: the only position where
        # multistride interleaves at line granularity.  Already a stream
        # loop (or parallel): no (further) multistride for this nest.
        if loop.kind is LoopKind.SERIAL and loop.name not in stream_names:
            target = loop
        break
    if target is None:
        return None
    strides = loop_strides(schedule, target.name)
    if strides is None:
        return None
    strided_groups, constant_groups, min_stride = _page_groups(
        strides, page_elems
    )
    if strided_groups == 0:
        return None
    best = choose_streams(
        extent=target.extent,
        strided_groups=strided_groups,
        constant_groups=constant_groups,
        min_stride_elems=min_stride,
        dtype_size=dtype_size,
        line_size=line_size,
        candidates=candidates,
        params=params,
    )
    if best is None:
        return None
    return MultistridePlan(target.name, best.streams, best)


def apply_multistride(schedule: Schedule, plan: MultistridePlan) -> Schedule:
    """Clone ``schedule`` and apply a plan to the clone."""
    rewritten = clone_schedule(schedule)
    rewritten.multistride(plan.loop, plan.streams)
    return rewritten


def optimize_multistride(
    func: Func,
    arch: ArchSpec,
    schedule: Optional[Schedule] = None,
    *,
    streams: StreamRequest = "auto",
    params: Optional[StreamModelParams] = None,
) -> Optional[Tuple[Schedule, MultistridePlan]]:
    """Plan and apply multistride on ``schedule`` (default: the standard
    untransformed schedule of ``func``).  Returns the rewritten schedule
    with its plan, or ``None`` when no feasible rewrite exists."""
    if schedule is None:
        from repro.core.standard import untransformed_schedule

        schedule = untransformed_schedule(func, arch)
    plan = plan_multistride(schedule, arch, streams=streams, params=params)
    if plan is None:
        return None
    return apply_multistride(schedule, plan), plan
