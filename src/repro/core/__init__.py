"""The paper's contribution: prefetcher-aware loop-transformation selection.

Modules follow the paper's structure:

* :mod:`repro.core.classify` — Sec. 3.1 / Fig. 2: decide temporal vs
  spatial vs no transformation, and whether non-temporal stores apply.
* :mod:`repro.core.emu` — Algorithm 1: the cache-emulation routine that
  upper-bounds tile dimensions so no interference (conflict) misses occur,
  prefetched lines included.
* :mod:`repro.core.costs` — the analytical cost equations: working sets
  (Eqs. 1, 6, 18, 19), prefetch-aware cold-miss counts (Eqs. 2–10), the
  weighted total (Eq. 11), the loop-distance cost (Eq. 12) and the spatial
  partial costs (Eqs. 14–17).
* :mod:`repro.core.temporal` — Algorithm 2: tile-size + loop-order search
  for temporal reuse.
* :mod:`repro.core.spatial` — Algorithm 3: tile-size search for
  self-spatial reuse under transposition.
* :mod:`repro.core.standard` — Sec. 3.4: parallelization, vectorization
  and non-temporal stores.
* :mod:`repro.core.optimizer` — Fig. 1: the end-to-end flow producing a
  :class:`~repro.ir.schedule.Schedule`.
"""

from repro.core.classify import Locality, Classification, classify
from repro.core.emu import emu, emu_l1, emu_l2, EmuParams
from repro.core.costs import (
    RefPattern,
    extract_patterns,
    level1_misses,
    level2_misses,
    working_set_l1,
    working_set_l2,
    total_cost,
    order_cost,
    spatial_partial_cost,
    spatial_working_sets,
)
from repro.core.temporal import TemporalResult, optimize_temporal
from repro.core.spatial import SpatialResult, optimize_spatial
from repro.core.optimizer import OptimizationResult, optimize, optimize_pipeline

__all__ = [
    "Locality",
    "Classification",
    "classify",
    "emu",
    "emu_l1",
    "emu_l2",
    "EmuParams",
    "RefPattern",
    "extract_patterns",
    "level1_misses",
    "level2_misses",
    "working_set_l1",
    "working_set_l2",
    "total_cost",
    "order_cost",
    "spatial_partial_cost",
    "spatial_working_sets",
    "TemporalResult",
    "optimize_temporal",
    "SpatialResult",
    "optimize_spatial",
    "OptimizationResult",
    "optimize",
    "optimize_pipeline",
]
