"""Algorithm 3: the spatial-locality optimizer.

Used when the classifier finds *transposed* accesses but no temporal reuse
(Sec. 3.3).  The only reuse available is cache-line (self-spatial) reuse of
the transposed array's strided walk, so the tile is shaped to cooperate
with the streaming prefetchers:

* ``T_width`` tiles the output's column (leading) variable, ``T_height``
  the row variable;
* the height is upper-bounded by the **L2 cache emulation** (Algorithm 1)
  applied to the transposed array's column walk, so the strided rows plus
  their prefetched lines never conflict out of the cache;
* per-array partial costs follow Eqs. 15/17 — transposed arrays prefer
  ``T_width = lc`` (prefetching efficiency 1) and the maximum surviving
  height; contiguous arrays are indifferent;
* working sets (Eqs. 18/19) and the parallelism constraint (Eq. 13) filter
  candidates, and the minimum total cost wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.arch import ArchSpec
from repro.core.costs import (
    RefPattern,
    extract_patterns,
    spatial_partial_cost,
    spatial_working_sets,
)
from repro.core.emu import emu_l2
from repro.core.parallel import (
    GroupOutcome,
    evaluate_groups,
    merge_outcomes,
    resolve_jobs,
)
from repro.ir.analysis import StatementInfo, analyze_func
from repro.ir.func import Func
from repro.obs.events import (
    EVENT_CANDIDATE_PRUNED,
    EVENT_SEARCH_BOUND,
    REASON_CAPACITY,
    REASON_DEADLINE,
    REASON_EMU_BOUND,
    REASON_PARALLELISM,
)
from repro.obs.stats import (
    CandidateCounter,
    CandidateStats,
    deprecated_counter_read,
)
from repro.obs.tracer import current_tracer
from repro.util import DeadlineExceeded, ceil_div, checkpoint, tile_candidates


@dataclass
class SpatialResult:
    """Outcome of the spatial optimizer."""

    tiles: Dict[str, int]         # row var -> T_height, col var -> T_width
    row_var: str
    col_var: str
    parallel_var: Optional[str]
    cost: float
    stats: CandidateStats
    ws_l1: float
    ws_l2: float

    @property
    def candidates_evaluated(self) -> int:
        """Deprecated alias for ``stats.considered``."""
        deprecated_counter_read("SpatialResult")
        return self.stats.considered

    @property
    def tile_width(self) -> int:
        return self.tiles[self.col_var]

    @property
    def tile_height(self) -> int:
        return self.tiles[self.row_var]

    def describe(self) -> str:
        return (
            f"tile {self.tile_height}x{self.tile_width} "
            f"({self.row_var} x {self.col_var}); parallel: "
            f"{self.parallel_var}; cost={self.cost:.3g}"
        )


def optimize_spatial(
    func: Func,
    arch: ArchSpec,
    info: Optional[StatementInfo] = None,
    *,
    exhaustive: bool = False,
    use_emu: bool = True,
    order_step: bool = True,
    tracer=None,
    jobs: int = 1,
) -> SpatialResult:
    """Run Algorithm 3 on the main definition of ``func``.

    The two innermost output dimensions are tiled (the paper's benchmarks
    are 2-D); outer dimensions, if any, are left untouched.

    ``use_emu`` mirrors Algorithm 2's ablation switch: when disabled the
    Algorithm-1 interference bound on the tile height is replaced by a
    plain halved-L2 capacity bound.  ``order_step`` is accepted for a
    keyword surface uniform with :func:`repro.core.optimize_temporal`
    but is a documented no-op — Algorithm 3 has no Step-2 ordering
    search (the tile shape fixes the order).  ``tracer`` (default: the
    ambient :func:`repro.obs.current_tracer`) receives
    ``candidate.pruned`` / ``search.bound`` events and a
    ``spatial.search`` span; the returned ``stats`` are identical with
    or without a recording tracer.

    ``jobs`` evaluates the width/height lattice across that many worker
    processes (0 = auto); the chosen tile, cost and ``stats`` counts are
    bit-identical to the serial scan (see :mod:`repro.core.parallel`).
    A recording tracer forces the serial path so per-candidate events
    keep their serial order.
    """
    del order_step  # uniform keyword surface; no ordering step here
    info = info or analyze_func(func)
    patterns = extract_patterns(info)
    dts = info.dtype_size
    lc = arch.lc(dts)

    out_vars = [v for v in info.output.dim_vars if v is not None]
    if len(out_vars) < 2:
        raise ValueError(
            f"{func.name}: spatial optimization needs a 2-D (or deeper) "
            "output"
        )
    col = out_vars[-1]
    row = out_vars[-2]
    bounds = {v.name: func.bound_of(v.name) for v in info.definition.all_vars()}

    # The strided walk whose conflicts bound the tile height: the
    # transposed array is traversed along its row stride, which equals the
    # extent of the dimension the *output* iterates contiguously.
    transposed = info.transposed_inputs()
    row_stride = bounds[col]
    if transposed:
        lead = transposed[0].leading_var
        if lead is not None and lead in bounds:
            row_stride = bounds[lead]

    l1_capacity = arch.cache_level(1).capacity_elements(dts)
    l2_capacity = arch.cache_level(2).capacity_elements(dts) // 2
    threads = arch.total_threads
    n_arrays = len(patterns)

    width_cands = tile_candidates(
        bounds[col], bounds[col], quantum=lc, exhaustive=exhaustive
    )
    width_cands = [w for w in width_cands if w >= min(lc, bounds[col])]

    tracer = tracer if tracer is not None else current_tracer()
    traced = tracer.enabled
    counter = CandidateCounter("spatial", tracer)

    ctx = _SpatialContext(
        patterns=tuple(patterns),
        bounds=dict(bounds),
        row=row,
        col=col,
        n_arrays=n_arrays,
        lc=lc,
        l1_capacity=l1_capacity,
        l2_capacity=l2_capacity,
        threads=threads,
        exhaustive=exhaustive,
    )
    # A recording tracer needs per-candidate events in serial order, so
    # parallel evaluation only engages untraced (results are identical).
    parallel = resolve_jobs(jobs) > 1 and not traced
    groups: List[_SpatialGroup] = []

    best: Optional[Tuple[float, int, int, float, float]] = None
    emu_excluded = set()
    with tracer.span("spatial.search", func=func.name):
        for t_w in width_cands:
            if use_emu:
                max_h = emu_l2(
                    arch,
                    row_width_elems=t_w,
                    row_stride_elems=row_stride,
                    max_rows=bounds[row],
                    dts=dts,
                )
            else:
                # Ablation: capacity-only bound, no interference emulation.
                max_h = max(1, l2_capacity // max(1, t_w))
            if traced:
                tracer.event(
                    EVENT_SEARCH_BOUND,
                    phase="spatial",
                    var=row,
                    t_w=t_w,
                    bound=max_h,
                    source="emu_l2" if use_emu else "capacity",
                )
                # Trace-only: heights the bound keeps out of the lattice
                # (never evaluated, hence never in ``stats``).
                if max_h < bounds[row]:
                    for t in tile_candidates(
                        bounds[row], bounds[row], exhaustive=exhaustive
                    ):
                        if t <= max_h or (row, t) in emu_excluded:
                            continue
                        emu_excluded.add((row, t))
                        tracer.event(
                            EVENT_CANDIDATE_PRUNED,
                            phase="spatial",
                            reason=(
                                REASON_EMU_BOUND if use_emu else REASON_CAPACITY
                            ),
                            var=row,
                            tile=t,
                            bound=max_h,
                        )
            group = _SpatialGroup(t_w=t_w, max_h=max_h)
            if parallel:
                # Defer: groups are evaluated across workers below,
                # merged in this exact construction order.
                groups.append(group)
                continue
            outcome = _evaluate_spatial_group(
                ctx,
                group,
                counter=counter,
                tracer=tracer if traced else None,
                checkpoints=True,
            )
            if outcome.best is not None and (
                best is None or outcome.best[0] < best[0]
            ):
                best = outcome.best

        if parallel and groups:
            merged = merge_outcomes(
                evaluate_groups(
                    _evaluate_spatial_group,
                    ctx,
                    groups,
                    jobs=jobs,
                    checkpoint_label="spatial tile search",
                )
            )
            counter.stats.considered += merged.considered
            for reason, count in merged.pruned.items():
                counter.stats.pruned[reason] = (
                    counter.stats.pruned.get(reason, 0) + count
                )
            best = merged.best

    if best is None:
        # Constraints rejected everything: degenerate single-line tiles.
        t_w = min(lc, bounds[col])
        best = (float("inf"), t_w, 1, 0.0, 0.0)

    cost, t_w, t_h, ws1, ws2 = best
    tiles = {row: t_h, col: t_w}
    return SpatialResult(
        tiles=tiles,
        row_var=row,
        col_var=col,
        parallel_var=row,
        cost=cost,
        stats=counter.stats,
        ws_l1=ws1,
        ws_l2=ws2,
    )


@dataclass(frozen=True)
class _SpatialContext:
    """Search-invariant inputs of the Algorithm-3 lattice, shipped to
    workers once per process (see :mod:`repro.core.parallel`)."""

    patterns: Tuple[RefPattern, ...]
    bounds: Dict[str, int]
    row: str
    col: str
    n_arrays: int
    lc: int
    l1_capacity: int
    l2_capacity: int
    threads: int
    exhaustive: bool


@dataclass(frozen=True)
class _SpatialGroup:
    """One lattice group: a ``T_width`` choice plus its Algorithm-1
    height bound.  Height candidates are recomputed inside the group."""

    t_w: int
    max_h: int


def _evaluate_spatial_group(
    ctx: _SpatialContext,
    group: _SpatialGroup,
    *,
    counter: Optional[CandidateCounter] = None,
    tracer=None,
    checkpoints: bool = False,
) -> GroupOutcome:
    """Evaluate every height for one ``T_width``, in serial-scan order.

    Serial callers pass the live ``counter``/``tracer`` and get per-
    candidate accounting, trace events and deadline checkpoints exactly
    as before; workers call with the defaults and the accounting comes
    back in the :class:`GroupOutcome`.
    """
    t_w = group.t_w
    height_cands = tile_candidates(
        ctx.bounds[ctx.row], group.max_h, exhaustive=ctx.exhaustive
    )
    out = GroupOutcome()
    for t_h in height_cands:
        if checkpoints:
            # Cooperative deadline probe: Algorithm 3's search must stay
            # interruptible per candidate.
            try:
                checkpoint("spatial tile search")
            except DeadlineExceeded:
                if tracer is not None:
                    tracer.event(
                        EVENT_CANDIDATE_PRUNED,
                        phase="spatial",
                        reason=REASON_DEADLINE,
                    )
                raise
        out.considered += 1
        if counter is not None:
            counter.considered()
        ws1, ws2 = spatial_working_sets(ctx.n_arrays, t_w, t_h, ctx.lc)
        if ws1 > ctx.l1_capacity or ws2 > ctx.l2_capacity:
            out.pruned[REASON_CAPACITY] = out.pruned.get(REASON_CAPACITY, 0) + 1
            if counter is not None:
                counter.pruned(REASON_CAPACITY, t_w=t_w, t_h=t_h)
            continue
        if ceil_div(ctx.bounds[ctx.row], t_h) < ctx.threads:
            # Eq. 13 on the parallelized row loop
            out.pruned[REASON_PARALLELISM] = (
                out.pruned.get(REASON_PARALLELISM, 0) + 1
            )
            if counter is not None:
                counter.pruned(REASON_PARALLELISM, t_w=t_w, t_h=t_h)
            continue
        # Sum of per-array partial costs; the (contiguous) output only
        # adds a tile-independent constant, so including it is harmless.
        cost = sum(
            spatial_partial_cost(p, ctx.col, t_w, t_h, ctx.bounds, ctx.lc)
            for p in ctx.patterns
        )
        if out.best is None or cost < out.best[0]:
            out.best = (cost, t_w, t_h, ws1, ws2)
    return out
