"""Algorithm 1: the cache-emulation routine bounding tile dimensions.

``emu`` answers: *how many tile rows of a given width can live in the cache
simultaneously — prefetched lines included — before some set overflows its
(effective) associativity?*  The returned row count is the upper bound
``maxTi`` that Algorithms 2 and 3 impose on the next tile dimension.

The implementation follows the paper's pseudocode as printed, with one
repair (the set-index modulo the pseudocode omits; see DESIGN.md):

* the emulated cache is an occupancy counter array of size
  ``Nsets = LiCS / (Liway * DTS)`` — note the *element*-granular set
  count, exactly the paper's initialization — indexed by **cache-line
  index modulo Nsets**.  This set space is ``lc`` times larger than the
  physical set count, so the emulation behaves as a capacity-per-way
  bound that still detects aliasing at way-sized strides; it is what
  reproduces the paper's reported tile magnitudes (e.g. ``Ti = 32`` for
  2048x2048 matmul), where a physically-exact set model would collapse
  every power-of-two stride to the associativity;
* effective associativity is ``Liway`` divided by the hardware threads per
  core (SMT co-residency), or by the core count for a shared L2 (the ARM
  change described in Sec. 5.1) — both via
  :meth:`~repro.arch.ArchSpec.effective_ways`;
* **L1 variant**: each row is padded by one extra line — the streaming
  prefetcher's next-line fetch (the paper's
  ``Ti-1 = ceil(max(Ti-1 + lc, 2*lc) / lc)``);
* **L2 variant**: the set count is halved (headroom for the constant-stride
  prefetcher's fills), and after each placed line the next ``L2pref`` lines
  are probed while within the maximum prefetch distance ``L2maxpref`` —
  a full probed set counts as interference, modelling prefetches evicting
  useful data.

Rows are placed at a constant row stride (the array's leading-dimension
extent), starting from ``addr``; the first full set stops the emulation.

**Memoization.**  The Algorithm 2/3 searches re-invoke ``emu`` with
identical ``(level, row_width, stride)`` inputs across the tile lattice
— and again for every technique/benchmark pair a sweep evaluates — so
the routine is memoized behind a content-keyed cache: the key is the
:meth:`~repro.arch.ArchSpec.fingerprint` plus the frozen
:class:`EmuParams`.  The cache is observationally transparent: a hit
returns the identical row count and still emits the same ``emu`` trace
event and per-level call counter, so traced event streams are
bit-identical with the cache hot, cold, or disabled.  Hit/miss totals
are published as the ``stats.emu_cache_hit`` / ``stats.emu_cache_miss``
counters on the ambient tracer and via :func:`emu_cache_stats`.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.arch import ArchSpec
from repro.obs.events import EVENT_EMU
from repro.obs.tracer import current_tracer
from repro.util import ceil_div


@dataclass(frozen=True)
class EmuParams:
    """Inputs of one ``emu`` invocation (mirrors the paper's Table 2)."""

    level: int            # 1 or 2: which cache to emulate
    row_width_elems: int  # the previously chosen tile dimension (Ti-1)
    row_stride_elems: int  # leading-dimension extent (Bi): row-to-row stride
    max_rows: int         # problem bound on this dimension
    dts: int              # data type size in bytes
    addr: int = 0         # base element address of the array


@dataclass
class EmuCacheStats:
    """Cumulative memoization counters (process-wide, see
    :func:`emu_cache_stats`)."""

    hits: int = 0
    misses: int = 0
    size: int = 0

    @property
    def calls(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.calls if self.calls else 0.0


#: Bound on memoized entries; far above one sweep's distinct invocations,
#: small enough that a pathological caller cannot grow memory unboundedly.
_EMU_CACHE_CAP = 65536

_emu_cache: "OrderedDict[Tuple[str, EmuParams], int]" = OrderedDict()
_emu_cache_lock = threading.Lock()
_emu_cache_stats = EmuCacheStats()
_emu_cache_enabled = os.environ.get("REPRO_EMU_CACHE", "1") != "0"


def emu_cache_stats() -> EmuCacheStats:
    """A snapshot of the memoization counters (hits, misses, entries)."""
    with _emu_cache_lock:
        return EmuCacheStats(
            hits=_emu_cache_stats.hits,
            misses=_emu_cache_stats.misses,
            size=len(_emu_cache),
        )


def clear_emu_cache() -> None:
    """Drop every memoized entry and zero the hit/miss counters."""
    with _emu_cache_lock:
        _emu_cache.clear()
        _emu_cache_stats.hits = 0
        _emu_cache_stats.misses = 0


def configure_emu_cache(enabled: bool) -> bool:
    """Enable/disable the memo (e.g. for A/B benchmarking); returns the
    previous setting.  Disabling does not clear existing entries."""
    global _emu_cache_enabled
    previous = _emu_cache_enabled
    _emu_cache_enabled = bool(enabled)
    return previous


def emu(arch: ArchSpec, params: EmuParams) -> int:
    """Run Algorithm 1; return ``maxTi`` (rows that fit without conflict).

    Parameters
    ----------
    arch:
        Platform description; supplies cache geometry, effective ways and
        the prefetcher degree/distance.
    params:
        The invocation inputs (see :class:`EmuParams`).
    """
    if params.level not in (1, 2):
        raise ValueError(f"emu supports levels 1 and 2, got {params.level}")
    if params.row_width_elems <= 0:
        raise ValueError("row width must be positive")
    if params.row_stride_elems <= 0:
        # A zero (or negative) stride would alias every row onto one set
        # and silently report a single-row bound; reject it like the
        # other degenerate inputs.
        raise ValueError("row stride must be positive")
    if params.max_rows <= 0:
        raise ValueError("max_rows must be positive")

    tracer = current_tracer()
    if _emu_cache_enabled:
        key = (arch.fingerprint(), params)
        with _emu_cache_lock:
            cached = _emu_cache.get(key)
            if cached is not None:
                _emu_cache.move_to_end(key)
                _emu_cache_stats.hits += 1
            else:
                _emu_cache_stats.misses += 1
        if cached is not None:
            if tracer.enabled:
                tracer.count("stats.emu_cache_hit")
            _trace_emu(tracer, params, cached)
            return cached
        if tracer.enabled:
            tracer.count("stats.emu_cache_miss")
        max_ti = _emu_uncached(arch, params)
        with _emu_cache_lock:
            _emu_cache[key] = max_ti
            while len(_emu_cache) > _EMU_CACHE_CAP:
                _emu_cache.popitem(last=False)
        _trace_emu(tracer, params, max_ti)
        return max_ti
    max_ti = _emu_uncached(arch, params)
    _trace_emu(tracer, params, max_ti)
    return max_ti


def _emu_uncached(arch: ArchSpec, params: EmuParams) -> int:
    """The Algorithm 1 occupancy emulation itself (no cache, no trace)."""
    spec = arch.cache_level(params.level)
    lc = arch.lc(params.dts)
    ways = arch.effective_ways(params.level)
    # The paper's initialization: Nsets = LiCS / (Liway * DTS).
    nsets = spec.size // (spec.ways * params.dts)

    if params.level == 2:
        # Headroom for constant-stride prefetch fills: halve the sets.
        nsets = max(1, nsets // 2)
        row_lines = ceil_div(max(params.row_width_elems, lc), lc)
        probe_degree = arch.l2_prefetches_per_access
        max_pref_distance = arch.l2_max_prefetch_distance
    else:
        # The L1 streaming prefetcher drags one extra line per row.
        row_lines = ceil_div(max(params.row_width_elems + lc, 2 * lc), lc)
        probe_degree = 0
        max_pref_distance = 0

    occupancy = [0] * nsets
    row_stride_lines = max(1, ceil_div(params.row_stride_elems, lc))
    base_line = params.addr // lc if lc else params.addr

    max_ti = 0
    placed_lines = 0
    while max_ti < params.max_rows:
        start = base_line + max_ti * row_stride_lines
        interference = False
        for offset in range(row_lines):
            line = start + offset
            set_index = line % nsets
            if occupancy[set_index] >= ways:
                interference = True
                break
            occupancy[set_index] += 1
            placed_lines += 1
            # Stride-prefetch probes (L2 only): the engine runs up to
            # ``probe_degree`` lines ahead of the demand stream (never
            # farther than the maximum prefetch distance); a full target
            # set means the prefetch would evict useful data.
            if probe_degree:
                for p in range(1, min(probe_degree, max_pref_distance) + 1):
                    probe = (line + p) % nsets
                    if occupancy[probe] >= ways:
                        interference = True
                        break
                if interference:
                    break
        if interference:
            break
        max_ti += 1
    return max(1, max_ti)


def _trace_emu(tracer, params: EmuParams, max_ti: int) -> None:
    """Emit the per-call ``emu`` telemetry.

    Called on hits and misses alike: the event stream of a traced search
    is identical whether the memo served the answer or Algorithm 1 ran.
    """
    if tracer.enabled:
        tracer.count(f"emu.l{params.level}.calls")
        tracer.event(
            EVENT_EMU,
            level=params.level,
            row_width_elems=params.row_width_elems,
            row_stride_elems=params.row_stride_elems,
            max_rows=params.max_rows,
            max_ti=max_ti,
            saturated=max_ti >= params.max_rows,
        )


def emu_l1(
    arch: ArchSpec,
    *,
    row_width_elems: int,
    row_stride_elems: int,
    max_rows: int,
    dts: int,
    addr: int = 0,
) -> int:
    """Convenience wrapper: Algorithm 1 against the L1 cache."""
    return emu(
        arch,
        EmuParams(
            level=1,
            row_width_elems=row_width_elems,
            row_stride_elems=row_stride_elems,
            max_rows=max_rows,
            dts=dts,
            addr=addr,
        ),
    )


def emu_l2(
    arch: ArchSpec,
    *,
    row_width_elems: int,
    row_stride_elems: int,
    max_rows: int,
    dts: int,
    addr: int = 0,
) -> int:
    """Convenience wrapper: Algorithm 1 against the L2 cache."""
    return emu(
        arch,
        EmuParams(
            level=2,
            row_width_elems=row_width_elems,
            row_stride_elems=row_stride_elems,
            max_rows=max_rows,
            dts=dts,
            addr=addr,
        ),
    )
