"""The analytical cost equations of Sections 3.2 and 3.3, generalized.

The paper derives its equations on tiled matmul (Listing 1); this module
implements the same reasoning for an arbitrary perfect nest.  The key
modelling device is the **prefetch-aware cold-miss count** of a reference
footprint: with a streaming prefetcher, a row of ``T`` contiguous elements
costs *one* miss (Eq. 2 -> Eq. 3), so a footprint's misses equal its number
of *rows* when its leading dimension varies in the inner loops, and its
number of *elements* when it does not (strided walk).

Reuse structure (Sec. 3.2): L1 reuse is achieved at the **outermost
intra-tile loop** — references independent of that loop are loaded once per
tile instead of once per iteration (Eq. 4); L2 reuse is achieved at the
**innermost inter-tile loop** likewise (Eqs. 8–10).  The weighted total is
``C_total = a2 * C_L1 + a3 * C_L2`` (Eq. 11): an L1 miss is served by L2,
and an L2 miss by L3 — because the stride prefetchers keep those levels
populated — hence the weights are the L2 and L3 access times.

``order_cost`` is Eq. 12: for every original loop, the iteration distance
between its inter-tile and intra-tile levels (the product of the trip
counts of everything in between); minimizing it shortens reuse distances
and the strides the inter-tile prefetch streams see.

``spatial_partial_cost`` implements Eqs. 14–17: a transposed array's cost
shrinks with tile height and grows with tile width (its *prefetching
efficiency* is ``T_width / lc``), while contiguous arrays cost a constant
``B_total / lc`` — which is why the spatial optimizer picks cache-line-wide,
maximally tall tiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.arch import ArchSpec
from repro.ir.analysis import RefInfo, StatementInfo
from repro.util import ceil_div


@dataclass(frozen=True)
class RefPattern:
    """One *distinct* array access pattern of the statement.

    Multiple textual references with the same per-dimension variables (the
    read and the write of ``C[i][j]``, or a stencil's taps) occupy the same
    rows/lines, so the model counts them once — exactly as the paper counts
    arrays, not references, in Eqs. 1–10.

    ``var_strides`` records each variable's element stride through the
    array (row-major), which the optimizers feed to the cache-emulation
    bound for strided walks.
    """

    name: str
    dim_vars: Tuple[Optional[str], ...]
    var_strides: Tuple[Tuple[str, int], ...] = ()

    @property
    def vars(self) -> Set[str]:
        return {v for v in self.dim_vars if v is not None}

    @property
    def leading_var(self) -> Optional[str]:
        return self.dim_vars[-1]

    def stride_of(self, var: str) -> int:
        for name, stride in self.var_strides:
            if name == var:
                return stride
        return 0

    def __repr__(self) -> str:
        return f"RefPattern({self.name}[{','.join(v or '_' for v in self.dim_vars)}])"


def extract_patterns(info: StatementInfo) -> List[RefPattern]:
    """Distinct access patterns of a statement (output + inputs)."""
    seen: Dict[Tuple[str, Tuple[Optional[str], ...]], RefPattern] = {}
    refs: List[RefInfo] = [info.output] + info.inputs
    for ref in refs:
        key = (ref.name, ref.dim_vars)
        if key not in seen:
            strides = tuple(
                (v, abs(ref.stride_of(v))) for v in sorted(ref.index_vars)
            )
            seen[key] = RefPattern(
                name=ref.name, dim_vars=ref.dim_vars, var_strides=strides
            )
    return list(seen.values())


def _prod(values: Iterable[float]) -> float:
    out = 1.0
    for v in values:
        out *= v
    return out


def _footprint_misses(
    pattern: RefPattern,
    varying: Set[str],
    tiles: Dict[str, int],
    lc: int,
    *,
    prefetch_aware: bool = True,
) -> float:
    """Cold misses of one footprint.

    ``varying`` is the set of loop variables that iterate *inside* the
    reuse loop.  With ``prefetch_aware`` (the paper's model, Eq. 3), the
    streaming prefetcher covers each contiguous row for one miss; without
    it (Eq. 2 — and the TSS/TTS baselines of Sec. 5.2), a row of ``T``
    elements costs ``ceil(T / lc)`` misses.  Strided walks (leading
    dimension not varying) pay one line per element either way.
    """
    active = [v for v in pattern.vars if v in varying]
    if not active:
        return 1.0
    leading = pattern.leading_var
    if leading in varying and leading in pattern.vars:
        rows = max(1.0, _prod(tiles[v] for v in active if v != leading))
        if prefetch_aware:
            return rows
        return rows * max(1.0, ceil_div(tiles[leading], lc))
    return _prod(tiles[v] for v in active)


def _footprint_elements(
    pattern: RefPattern, varying: Set[str], tiles: Dict[str, int], lc: int
) -> float:
    """Cache footprint of one reference, in element-equivalents.

    A strided walk (leading dimension not varying) occupies a full cache
    line per element — the same charge the paper's Eq. 18 applies to the
    transposed array (``lc * Tx``)."""
    active = [v for v in pattern.vars if v in varying]
    if not active:
        return 1.0
    elements = _prod(tiles[v] for v in active)
    if pattern.leading_var in varying:
        return elements
    return elements * lc


# ---------------------------------------------------------------------------
# Working sets (Eqs. 1 and 6)
# ---------------------------------------------------------------------------


def working_set_l1(
    patterns: Sequence[RefPattern],
    tiles: Dict[str, int],
    intra_order: Sequence[str],
    lc: int = 1,
) -> float:
    """Element-equivalents live across one iteration of the outermost
    intra-tile loop (Eq. 1: ``Tj + Tk + Tj*Tk`` for matmul; strided
    footprints charged a line per element as in Eq. 18)."""
    inner = set(intra_order[1:])
    return sum(_footprint_elements(p, inner, tiles, lc) for p in patterns)


def working_set_l2(
    patterns: Sequence[RefPattern],
    tiles: Dict[str, int],
    intra_order: Sequence[str],
    lc: int = 1,
) -> float:
    """Element-equivalents live across one iteration of the innermost
    inter-tile loop — the whole tile footprint (Eq. 6)."""
    inner = set(intra_order)
    return sum(_footprint_elements(p, inner, tiles, lc) for p in patterns)


# ---------------------------------------------------------------------------
# Miss counts (Eqs. 5 and 10)
# ---------------------------------------------------------------------------


def level1_misses(
    patterns: Sequence[RefPattern],
    tiles: Dict[str, int],
    bounds: Dict[str, int],
    intra_order: Sequence[str],
    lc: int,
    *,
    prefetch_aware: bool = True,
) -> float:
    """Estimated L1 misses for the whole nest (Eq. 5 generalized).

    Reuse loop: the outermost intra-tile loop.  References independent of
    it are loaded once per tile; the rest re-stream every iteration.
    """
    reuse_var = intra_order[0]
    inner = set(intra_order[1:])
    per_tile = 0.0
    for p in patterns:
        per_iter = _footprint_misses(
            p, inner, tiles, lc, prefetch_aware=prefetch_aware
        )
        if reuse_var in p.vars:
            if reuse_var == p.leading_var:
                mult = max(1.0, tiles[reuse_var] / lc)
            else:
                mult = tiles[reuse_var]
        else:
            mult = 1.0
        per_tile += per_iter * mult
    inter_iters = _prod(
        ceil_div(bounds[v], tiles[v]) for v in intra_order
    )
    return per_tile * inter_iters


def level2_misses(
    patterns: Sequence[RefPattern],
    tiles: Dict[str, int],
    bounds: Dict[str, int],
    intra_order: Sequence[str],
    inter_order: Sequence[str],
    lc: int,
    *,
    prefetch_aware: bool = True,
) -> float:
    """Estimated L2 misses for the whole nest (Eq. 10 generalized).

    Reuse loop: the innermost inter-tile loop.  References independent of
    its variable keep their tile resident in L2 across its iterations.
    """
    reuse_var = inter_order[-1]
    all_intra = set(intra_order)
    per_block = 0.0
    reuse_trips = ceil_div(bounds[reuse_var], tiles[reuse_var])
    for p in patterns:
        per_iter = _footprint_misses(
            p, all_intra, tiles, lc, prefetch_aware=prefetch_aware
        )
        mult = reuse_trips if reuse_var in p.vars else 1.0
        per_block += per_iter * mult
    outer_iters = _prod(
        ceil_div(bounds[v], tiles[v]) for v in inter_order[:-1]
    )
    return per_block * outer_iters


def total_cost(
    arch: ArchSpec,
    patterns: Sequence[RefPattern],
    tiles: Dict[str, int],
    bounds: Dict[str, int],
    intra_order: Sequence[str],
    inter_order: Sequence[str],
    dts: int,
) -> float:
    """Eq. 11: ``a2 * C_L1 + a3 * C_L2``.

    ``a2``/``a3`` are the L2/L3 access latencies (main memory standing in
    for a missing L3, as on the ARM A15) — the levels that actually serve
    those misses thanks to the stride prefetchers.
    """
    lc = arch.lc(dts)
    c_l1 = level1_misses(patterns, tiles, bounds, intra_order, lc)
    c_l2 = level2_misses(patterns, tiles, bounds, intra_order, inter_order, lc)
    return arch.access_cost(2) * c_l1 + arch.access_cost(3) * c_l2


# ---------------------------------------------------------------------------
# Loop-order cost (Eq. 12)
# ---------------------------------------------------------------------------


def order_cost(
    full_order: Sequence[Tuple[str, str]],
    tiles: Dict[str, int],
    bounds: Dict[str, int],
) -> float:
    """Eq. 12: total inter/intra-tile loop distance.

    ``full_order`` lists the final nest outermost-first as
    ``(original_var, "inter" | "intra")`` pairs.  A loop level's trip count
    is ``ceil(B/T)`` for inter-tile and ``T`` for intra-tile levels.  For
    each variable present at both levels, the cost contribution is the
    product of the trip counts of every loop strictly between them.
    """
    trips: List[float] = []
    position: Dict[Tuple[str, str], int] = {}
    for idx, (var, kind) in enumerate(full_order):
        if kind == "inter":
            trips.append(ceil_div(bounds[var], tiles[var]))
        elif kind == "intra":
            trips.append(tiles[var])
        else:
            raise ValueError(f"loop kind must be inter/intra, got {kind!r}")
        position[(var, kind)] = idx
    total = 0.0
    variables = {var for var, _ in full_order}
    for var in variables:
        if (var, "inter") in position and (var, "intra") in position:
            lo = position[(var, "inter")]
            hi = position[(var, "intra")]
            if hi < lo:
                lo, hi = hi, lo
            total += _prod(trips[lo + 1 : hi])
    return total


# ---------------------------------------------------------------------------
# Spatial model (Eqs. 14–19)
# ---------------------------------------------------------------------------


def spatial_partial_cost(
    pattern: RefPattern,
    output_leading: str,
    tile_width: int,
    tile_height: int,
    bounds: Dict[str, int],
    lc: int,
) -> float:
    """Per-array cost of the spatial optimizer (Eqs. 15/17).

    ``tile_width`` tiles the output's leading (column) variable;
    ``tile_height`` tiles the other one.  A *transposed* array — one whose
    own leading variable differs from the output's — pays the prefetching
    efficiency ``tile_width / lc`` on ``B_total / tile_height`` rows; a
    contiguous array degenerates to the constant ``B_total / lc``.
    """
    total_space = _prod(bounds[v] for v in pattern.vars) if pattern.vars else 1.0
    transposed = (
        pattern.leading_var is not None
        and pattern.leading_var != output_leading
        and output_leading in pattern.vars
    )
    if transposed:
        return (total_space / tile_height) * (tile_width / lc)
    return total_space / lc


def spatial_working_sets(
    n_arrays: int, tile_width: int, tile_height: int, lc: int
) -> Tuple[float, float]:
    """Eqs. 18/19: ``wsL1 = lc*Tx + Tx`` and ``wsL2 = n * Tx * Ty``.

    The L1 term charges the transposed array a full line per element of a
    tile-width stripe (its accesses are strided) plus the contiguous
    stripe.  The paper's two-array form uses ``2 * Tx * Ty``; we scale by
    the actual array count.
    """
    ws_l1 = float(lc * tile_width + tile_width)
    ws_l2 = float(max(2, n_arrays) * tile_width * tile_height)
    return ws_l1, ws_l2
