"""Statement classification (paper Sec. 3.1, Fig. 2).

The classifier inspects the innermost statement of the loop nest and routes
the optimization flow:

1. If input arrays use index variables that do **not** appear in the output
   array (reduction dimensions), the nest has temporal-reuse potential and
   goes to the temporal optimizer.
2. Otherwise, if some input array appears **transposed** relative to the
   output, only self-spatial (cache-line) reuse exists; the nest goes to
   the spatial optimizer.
3. Otherwise — purely contiguous streams, or stencil neighborhoods — the
   streaming prefetchers already deliver the available reuse and any loop
   transformation would only perturb their stride detection, so no loop
   transformation is applied (only parallelization/vectorization).

Independently, when the output is never re-read by the statement, the
schedule may use **non-temporal stores** to avoid polluting the caches
(Sec. 3.4) — this is what separates "Proposed" from "Proposed+NTI" in the
paper's figures.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.ir.analysis import RefInfo, StatementInfo, analyze_func
from repro.ir.func import Func
from repro.util import checkpoint


class Locality(enum.Enum):
    """Which locality the optimizer should stress."""

    TEMPORAL = "temporal"
    SPATIAL = "spatial"
    NONE = "none"


@dataclass
class Classification:
    """Outcome of the classification step."""

    locality: Locality
    use_nti: bool
    info: StatementInfo
    transposed: List[RefInfo]
    reason: str

    def __repr__(self) -> str:
        nti = "+NTI" if self.use_nti else ""
        return f"Classification({self.locality.value}{nti}: {self.reason})"


def classify(func: Func) -> Classification:
    """Classify the main definition of ``func`` (Fig. 2's decision tree)."""
    checkpoint("classification")
    info = analyze_func(func)
    use_nti = not info.output_is_reused
    transposed = info.transposed_inputs()

    if info.extra_input_vars:
        return Classification(
            locality=Locality.TEMPORAL,
            use_nti=use_nti,
            info=info,
            transposed=transposed,
            reason=(
                "input indices "
                f"{sorted(info.extra_input_vars)} do not appear in the "
                "output: temporal reuse is exploitable"
            ),
        )
    if transposed:
        return Classification(
            locality=Locality.SPATIAL,
            use_nti=use_nti,
            info=info,
            transposed=transposed,
            reason=(
                "array(s) "
                f"{[r.name for r in transposed]} appear transposed: "
                "optimize self-spatial reuse"
            ),
        )
    if info.is_stencil_like():
        reason = (
            "stencil-like neighborhood accesses: hardware prefetchers "
            "already exploit the uniform pattern (per [9]); no transformation"
        )
    else:
        reason = (
            "contiguous accesses only: loop transformations would disturb "
            "the streaming prefetchers; no transformation"
        )
    return Classification(
        locality=Locality.NONE,
        use_nti=use_nti,
        info=info,
        transposed=transposed,
        reason=reason,
    )
