"""The end-to-end optimization flow (paper Fig. 1).

``optimize`` takes an algorithm definition plus the architecture parameters
and produces an optimization schedule, in four stages:

1. **Classification** (Sec. 3.1) of the main definition's statement;
2. the **temporal** (Algorithm 2) or **spatial** (Algorithm 3) optimizer,
   or neither for contiguous/stencil nests;
3. **standard optimizations** — parallelization, vectorization — applied
   while materializing the Schedule;
4. **non-temporal stores** when the output is never re-read and the ISA
   supports them (the "+NTI" configurations of the paper's figures).

The wall-clock time of the whole flow is recorded in
``runtime_seconds`` (shown by ``describe()`` and the CLI); the Table 5
regeneration (``experiments/table5.py``) instead derives a deterministic
runtime from the searches' ``stats.considered`` counts so repeated
sweeps render identically.
"""

from __future__ import annotations

import contextlib
import time
import warnings
from dataclasses import dataclass
from typing import Dict, Optional

from repro.arch import ArchSpec
from repro.obs.events import EVENT_CLASSIFY
from repro.obs.tracer import activate_tracer, current_tracer
from repro.util import Deadline, active_deadline, checkpoint
from repro.core.classify import Classification, Locality, classify
from repro.core.spatial import SpatialResult, optimize_spatial
from repro.core.standard import build_schedule, untransformed_schedule
from repro.core.temporal import TemporalResult, optimize_temporal
from repro.ir.func import Func, Pipeline
from repro.ir.schedule import Schedule


def _resolve_use_nti(use_nti: bool, allow_nti: Optional[bool]) -> bool:
    """Apply the deprecated ``allow_nti`` spelling of ``use_nti``."""
    if allow_nti is None:
        return use_nti
    warnings.warn(
        "the allow_nti keyword is deprecated and will be removed in 2.0; "
        "pass use_nti instead (same meaning, uniform with the "
        "use_emu/order_step switches)",
        DeprecationWarning,
        stacklevel=3,
    )
    return allow_nti


@dataclass
class OptimizationResult:
    """Everything the flow decided, plus how long deciding took."""

    func: Func
    schedule: Schedule
    classification: Classification
    temporal: Optional[TemporalResult]
    spatial: Optional[SpatialResult]
    runtime_seconds: float
    #: The multi-striding classifier's verdict
    #: (:class:`repro.multistride.MultistrideDecision`) when the
    #: ``multistride`` option was enabled; ``None`` otherwise.
    multistride: Optional[object] = None

    @property
    def locality(self) -> Locality:
        return self.classification.locality

    @property
    def uses_nti(self) -> bool:
        return self.schedule.nontemporal

    def describe(self) -> str:
        lines = [
            f"{self.func.name}: {self.classification!r}",
            f"  runtime: {self.runtime_seconds * 1000:.1f} ms",
        ]
        if self.temporal:
            lines.append(f"  temporal: {self.temporal.describe()}")
        if self.spatial:
            lines.append(f"  spatial: {self.spatial.describe()}")
        if self.multistride is not None:
            lines.append(f"  multistride: {self.multistride.describe()}")
        lines.append(f"  schedule: {self.schedule.describe()}")
        return "\n".join(lines)


def optimize(
    func: Func,
    arch: ArchSpec,
    *,
    use_nti: bool = True,
    parallelize: bool = True,
    vectorize: bool = True,
    exhaustive: bool = False,
    use_emu: bool = True,
    order_step: bool = True,
    multistride="off",
    jobs: int = 1,
    deadline: Optional[Deadline] = None,
    tracer=None,
    allow_nti: Optional[bool] = None,
) -> OptimizationResult:
    """Run the full optimization flow on ``func``'s main definition.

    Parameters
    ----------
    func:
        The Func to optimize; bounds must be set.
    arch:
        Target platform parameters (Table 1 of the paper).
    use_nti:
        Permit non-temporal stores (disable to obtain the paper's plain
        "Proposed" configuration on NTI-eligible benchmarks).
    parallelize / vectorize:
        Master switches for the standard optimizations.
    exhaustive:
        Evaluate every integer tile size instead of the candidate lattice.
    use_emu / order_step:
        The temporal/spatial optimizers' ablation switches, forwarded
        verbatim (see :func:`repro.core.optimize_temporal` and
        :func:`repro.core.optimize_spatial`).  Both default to the
        paper's full method.
    multistride:
        ``"off"`` (default — the flow above, bit-identical to every
        pre-multistride release), ``"auto"`` (run the three-way
        tile-only / multistride-only / combined classifier of
        :mod:`repro.multistride` and keep the cheapest strategy), or an
        ``int >= 2`` (force that stream count on the best eligible
        loop).
    jobs:
        Worker processes for the Algorithm-2/3 candidate searches
        (0 = auto, 1 = serial); results are bit-identical either way
        (see :mod:`repro.core.parallel`).
    deadline:
        Optional time budget.  Installed as the ambient deadline for the
        whole flow, so the cooperative checkpoints inside classification
        and the Algorithm-2/3 candidate loops raise
        :class:`~repro.util.DeadlineExceeded` once it expires.  ``None``
        keeps whatever deadline an outer caller (e.g.
        :func:`repro.robust.safe_optimize`) already installed.
    tracer:
        Optional :class:`repro.obs.Tracer`.  Installed as the ambient
        tracer for the whole flow (like ``deadline``) and forwarded to
        the stage optimizers; ``None`` keeps whatever tracer an outer
        caller installed (defaulting to the zero-overhead
        :data:`repro.obs.NULL_TRACER`).
    allow_nti:
        Deprecated spelling of ``use_nti``; passing it warns and takes
        precedence.
    """
    use_nti = _resolve_use_nti(use_nti, allow_nti)
    with contextlib.ExitStack() as stack:
        if deadline is not None:
            stack.enter_context(active_deadline(deadline))
        if tracer is not None:
            stack.enter_context(activate_tracer(tracer))
        tracer = current_tracer()
        stack.enter_context(tracer.span("optimize", func=func.name))
        return _optimize_under_deadline(
            func,
            arch,
            use_nti=use_nti,
            parallelize=parallelize,
            vectorize=vectorize,
            exhaustive=exhaustive,
            use_emu=use_emu,
            order_step=order_step,
            multistride=multistride,
            jobs=jobs,
            tracer=tracer,
        )


def _optimize_under_deadline(
    func: Func,
    arch: ArchSpec,
    *,
    use_nti: bool,
    parallelize: bool,
    vectorize: bool,
    exhaustive: bool,
    use_emu: bool,
    order_step: bool,
    multistride,
    jobs: int,
    tracer,
) -> OptimizationResult:
    start = time.perf_counter()
    classification = classify(func)
    use_nti = use_nti and classification.use_nti and arch.supports_nt_stores
    if tracer.enabled:
        tracer.event(
            EVENT_CLASSIFY,
            func=func.name,
            locality=classification.locality.name.lower(),
            use_nti=use_nti,
        )

    temporal_result: Optional[TemporalResult] = None
    spatial_result: Optional[SpatialResult] = None

    if classification.locality is Locality.TEMPORAL:
        temporal_result = optimize_temporal(
            func,
            arch,
            classification.info,
            exhaustive=exhaustive,
            use_emu=use_emu,
            order_step=order_step,
            tracer=tracer,
            jobs=jobs,
        )
        if temporal_result.cost == float("inf"):
            schedule = untransformed_schedule(
                func,
                arch,
                parallelize=parallelize,
                vectorize=vectorize,
                nontemporal=use_nti,
            )
        else:
            schedule = build_schedule(
                func,
                arch,
                temporal_result.tiles,
                temporal_result.inter_order,
                temporal_result.intra_order,
                parallelize=parallelize,
                vectorize=vectorize,
                nontemporal=use_nti,
            )
    elif classification.locality is Locality.SPATIAL:
        spatial_result = optimize_spatial(
            func,
            arch,
            classification.info,
            exhaustive=exhaustive,
            use_emu=use_emu,
            order_step=order_step,
            tracer=tracer,
            jobs=jobs,
        )
        tiles = dict(spatial_result.tiles)
        # Untiled outer output dimensions (3-D+ outputs) stay untouched.
        bounds = {
            v.name: func.bound_of(v.name)
            for v in classification.info.definition.all_vars()
        }
        for var, bound in bounds.items():
            tiles.setdefault(var, bound)
        inter_order = [
            v
            for v in (spatial_result.row_var, spatial_result.col_var)
            if tiles[v] < bounds[v]
        ]
        intra_order = [
            v for v in bounds if tiles[v] == bounds[v] and v not in inter_order
        ]
        # Preserve definition order for untiled dims, then row/col tiles.
        intra_order += [
            v
            for v in (spatial_result.row_var, spatial_result.col_var)
            if tiles[v] > 1 and v not in intra_order
        ]
        schedule = build_schedule(
            func,
            arch,
            tiles,
            inter_order,
            intra_order,
            parallelize=parallelize,
            vectorize=vectorize,
            nontemporal=use_nti,
        )
    else:
        schedule = untransformed_schedule(
            func,
            arch,
            parallelize=parallelize,
            vectorize=vectorize,
            nontemporal=use_nti,
        )

    decision = None
    if multistride != "off":
        # Lazy import: the multistride package pulls in the simulator,
        # which the disabled path must never pay for (nor depend on).
        from repro.multistride import decide_strategy

        decision = decide_strategy(
            func,
            arch,
            schedule,
            multistride=multistride,
            tracer=tracer,
        )
        schedule = decision.schedule

    elapsed = time.perf_counter() - start
    return OptimizationResult(
        func=func,
        schedule=schedule,
        classification=classification,
        temporal=temporal_result,
        spatial=spatial_result,
        runtime_seconds=elapsed,
        multistride=decision,
    )


def optimize_pipeline(
    pipeline: Pipeline,
    arch: ArchSpec,
    *,
    use_nti: bool = True,
    parallelize: bool = True,
    vectorize: bool = True,
    exhaustive: bool = False,
    use_emu: bool = True,
    order_step: bool = True,
    multistride="off",
    jobs: int = 1,
    deadline: Optional[Deadline] = None,
    tracer=None,
    allow_nti: Optional[bool] = None,
) -> Dict[Func, Schedule]:
    """Optimize every stage of a pipeline independently (compute_root).

    All keyword switches are forwarded to :func:`optimize` per stage —
    the same uniform surface, including the ``use_emu``/``order_step``
    ablations, ``tracer``, and the deprecated ``allow_nti`` spelling of
    ``use_nti``; a ``deadline`` (and a ``tracer``) is shared across the
    whole pipeline, not per stage.
    """
    use_nti = _resolve_use_nti(use_nti, allow_nti)
    out: Dict[Func, Schedule] = {}
    with contextlib.ExitStack() as stack:
        if deadline is not None:
            stack.enter_context(active_deadline(deadline))
        if tracer is not None:
            stack.enter_context(activate_tracer(tracer))
        for stage in pipeline:
            checkpoint(f"pipeline stage {stage.name}")
            out[stage] = optimize(
                stage,
                arch,
                use_nti=use_nti,
                parallelize=parallelize,
                vectorize=vectorize,
                exhaustive=exhaustive,
                use_emu=use_emu,
                order_step=order_step,
                multistride=multistride,
                jobs=jobs,
            ).schedule
    return out
