"""The end-to-end optimization flow (paper Fig. 1).

``optimize`` takes an algorithm definition plus the architecture parameters
and produces an optimization schedule, in four stages:

1. **Classification** (Sec. 3.1) of the main definition's statement;
2. the **temporal** (Algorithm 2) or **spatial** (Algorithm 3) optimizer,
   or neither for contiguous/stencil nests;
3. **standard optimizations** — parallelization, vectorization — applied
   while materializing the Schedule;
4. **non-temporal stores** when the output is never re-read and the ISA
   supports them (the "+NTI" configurations of the paper's figures).

The wall-clock time of the whole flow is recorded in
``runtime_seconds`` (shown by ``describe()`` and the CLI); the Table 5
regeneration (``experiments/table5.py``) instead derives a deterministic
runtime from the searches' ``candidates_evaluated`` counts so repeated
sweeps render identically.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass
from typing import Dict, Optional

from repro.arch import ArchSpec
from repro.util import Deadline, active_deadline, checkpoint
from repro.core.classify import Classification, Locality, classify
from repro.core.spatial import SpatialResult, optimize_spatial
from repro.core.standard import build_schedule, untransformed_schedule
from repro.core.temporal import TemporalResult, optimize_temporal
from repro.ir.func import Func, Pipeline
from repro.ir.schedule import Schedule


@dataclass
class OptimizationResult:
    """Everything the flow decided, plus how long deciding took."""

    func: Func
    schedule: Schedule
    classification: Classification
    temporal: Optional[TemporalResult]
    spatial: Optional[SpatialResult]
    runtime_seconds: float

    @property
    def locality(self) -> Locality:
        return self.classification.locality

    @property
    def uses_nti(self) -> bool:
        return self.schedule.nontemporal

    def describe(self) -> str:
        lines = [
            f"{self.func.name}: {self.classification!r}",
            f"  runtime: {self.runtime_seconds * 1000:.1f} ms",
        ]
        if self.temporal:
            lines.append(f"  temporal: {self.temporal.describe()}")
        if self.spatial:
            lines.append(f"  spatial: {self.spatial.describe()}")
        lines.append(f"  schedule: {self.schedule.describe()}")
        return "\n".join(lines)


def optimize(
    func: Func,
    arch: ArchSpec,
    *,
    allow_nti: bool = True,
    parallelize: bool = True,
    vectorize: bool = True,
    exhaustive: bool = False,
    deadline: Optional[Deadline] = None,
) -> OptimizationResult:
    """Run the full optimization flow on ``func``'s main definition.

    Parameters
    ----------
    func:
        The Func to optimize; bounds must be set.
    arch:
        Target platform parameters (Table 1 of the paper).
    allow_nti:
        Permit non-temporal stores (disable to obtain the paper's plain
        "Proposed" configuration on NTI-eligible benchmarks).
    parallelize / vectorize:
        Master switches for the standard optimizations.
    exhaustive:
        Evaluate every integer tile size instead of the candidate lattice.
    deadline:
        Optional time budget.  Installed as the ambient deadline for the
        whole flow, so the cooperative checkpoints inside classification
        and the Algorithm-2/3 candidate loops raise
        :class:`~repro.util.DeadlineExceeded` once it expires.  ``None``
        keeps whatever deadline an outer caller (e.g.
        :func:`repro.robust.safe_optimize`) already installed.
    """
    with contextlib.ExitStack() as stack:
        if deadline is not None:
            stack.enter_context(active_deadline(deadline))
        return _optimize_under_deadline(
            func,
            arch,
            allow_nti=allow_nti,
            parallelize=parallelize,
            vectorize=vectorize,
            exhaustive=exhaustive,
        )


def _optimize_under_deadline(
    func: Func,
    arch: ArchSpec,
    *,
    allow_nti: bool,
    parallelize: bool,
    vectorize: bool,
    exhaustive: bool,
) -> OptimizationResult:
    start = time.perf_counter()
    classification = classify(func)
    use_nti = allow_nti and classification.use_nti and arch.supports_nt_stores

    temporal_result: Optional[TemporalResult] = None
    spatial_result: Optional[SpatialResult] = None

    if classification.locality is Locality.TEMPORAL:
        temporal_result = optimize_temporal(
            func, arch, classification.info, exhaustive=exhaustive
        )
        if temporal_result.cost == float("inf"):
            schedule = untransformed_schedule(
                func,
                arch,
                parallelize=parallelize,
                vectorize=vectorize,
                nontemporal=use_nti,
            )
        else:
            schedule = build_schedule(
                func,
                arch,
                temporal_result.tiles,
                temporal_result.inter_order,
                temporal_result.intra_order,
                parallelize=parallelize,
                vectorize=vectorize,
                nontemporal=use_nti,
            )
    elif classification.locality is Locality.SPATIAL:
        spatial_result = optimize_spatial(
            func, arch, classification.info, exhaustive=exhaustive
        )
        tiles = dict(spatial_result.tiles)
        # Untiled outer output dimensions (3-D+ outputs) stay untouched.
        bounds = {
            v.name: func.bound_of(v.name)
            for v in classification.info.definition.all_vars()
        }
        for var, bound in bounds.items():
            tiles.setdefault(var, bound)
        inter_order = [
            v
            for v in (spatial_result.row_var, spatial_result.col_var)
            if tiles[v] < bounds[v]
        ]
        intra_order = [
            v for v in bounds if tiles[v] == bounds[v] and v not in inter_order
        ]
        # Preserve definition order for untiled dims, then row/col tiles.
        intra_order += [
            v
            for v in (spatial_result.row_var, spatial_result.col_var)
            if tiles[v] > 1 and v not in intra_order
        ]
        schedule = build_schedule(
            func,
            arch,
            tiles,
            inter_order,
            intra_order,
            parallelize=parallelize,
            vectorize=vectorize,
            nontemporal=use_nti,
        )
    else:
        schedule = untransformed_schedule(
            func,
            arch,
            parallelize=parallelize,
            vectorize=vectorize,
            nontemporal=use_nti,
        )

    elapsed = time.perf_counter() - start
    return OptimizationResult(
        func=func,
        schedule=schedule,
        classification=classification,
        temporal=temporal_result,
        spatial=spatial_result,
        runtime_seconds=elapsed,
    )


def optimize_pipeline(
    pipeline: Pipeline,
    arch: ArchSpec,
    *,
    allow_nti: bool = True,
    parallelize: bool = True,
    vectorize: bool = True,
    exhaustive: bool = False,
    deadline: Optional[Deadline] = None,
) -> Dict[Func, Schedule]:
    """Optimize every stage of a pipeline independently (compute_root).

    All keyword switches are forwarded to :func:`optimize` per stage; a
    ``deadline`` is shared across the whole pipeline, not per stage.
    """
    out: Dict[Func, Schedule] = {}
    with contextlib.ExitStack() as stack:
        if deadline is not None:
            stack.enter_context(active_deadline(deadline))
        for stage in pipeline:
            checkpoint(f"pipeline stage {stage.name}")
            out[stage] = optimize(
                stage,
                arch,
                allow_nti=allow_nti,
                parallelize=parallelize,
                vectorize=vectorize,
                exhaustive=exhaustive,
            ).schedule
    return out
