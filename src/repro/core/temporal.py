"""Algorithm 2: the temporal-reuse optimizer.

Step 1 (tiling) searches tile sizes and reuse-loop placements:

* the **column variable** ``c`` — the output's leading index — is fixed as
  the innermost intra-tile loop (it is what gets vectorized, and the paper
  excludes permutations with column indices outermost);
* the tile of ``c`` is bounded by the problem size ``Bc``; the tile of the
  second-innermost intra variable is bounded by the **L1 cache emulation**
  (Algorithm 1); the third-innermost by the **L2 emulation**; any further
  dimensions only by their problem size (exactly the bound ladder of the
  paper's pseudocode);
* every candidate is checked for working-set fit (Eqs. 1/6) and for the
  parallelism constraint (Eq. 13: the parallelized inter-tile loop must
  offer at least one iteration per hardware thread);
* the cost is Eq. 11 (``a2*C_L1 + a3*C_L2``) and the minimum wins.

Step 2 (ordering) enumerates the valid inter-tile and intra-tile
permutations for the winning tiles and picks the one minimizing the loop
distance ``C_order`` (Eq. 12), keeping the column constraint, the chosen
reuse loops, and the parallel loop outermost.

The search enumerates *placements* ``(L, d2, d3, M)`` — outermost intra,
second/third innermost intra, innermost inter — rather than raw
permutations, because the Step-1 cost depends only on those positions; this
is what keeps the optimizer in paper-reported runtime territory
(milliseconds for 3-D nests, seconds for the 5-D convolution layer).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.arch import ArchSpec
from repro.core.costs import (
    RefPattern,
    extract_patterns,
    order_cost,
    total_cost,
    working_set_l1,
    working_set_l2,
)
from repro.core.emu import emu_l1, emu_l2
from repro.core.parallel import (
    GroupOutcome,
    evaluate_groups,
    merge_outcomes,
    resolve_jobs,
)
from repro.ir.analysis import StatementInfo, analyze_func
from repro.ir.func import Func
from repro.obs.events import (
    EVENT_CANDIDATE_PRUNED,
    EVENT_SEARCH_BOUND,
    REASON_CAPACITY,
    REASON_DEADLINE,
    REASON_EMU_BOUND,
    REASON_PARALLELISM,
    REASON_VECTOR_TILE,
)
from repro.obs.stats import (
    CandidateCounter,
    CandidateStats,
    deprecated_counter_read,
)
from repro.obs.tracer import current_tracer
from repro.util import DeadlineExceeded, ceil_div, checkpoint, tile_candidates


@dataclass
class TemporalResult:
    """Outcome of the temporal optimizer."""

    tiles: Dict[str, int]
    inter_order: List[str]   # outermost first
    intra_order: List[str]   # outermost first
    parallel_var: Optional[str]
    cost: float
    order_cost_value: float
    stats: CandidateStats
    ws_l1: float
    ws_l2: float

    @property
    def candidates_evaluated(self) -> int:
        """Deprecated alias for ``stats.considered``."""
        deprecated_counter_read("TemporalResult")
        return self.stats.considered

    def describe(self) -> str:
        tiles = ", ".join(f"T_{v}={t}" for v, t in sorted(self.tiles.items()))
        return (
            f"tiles: {tiles}; inter: {' > '.join(self.inter_order)}; "
            f"intra: {' > '.join(self.intra_order)}; parallel: "
            f"{self.parallel_var}; cost={self.cost:.3g}"
        )


def _column_vars(patterns: Sequence[RefPattern]) -> Set[str]:
    """Variables indexing the contiguous dimension of *any* array."""
    return {p.leading_var for p in patterns if p.leading_var is not None}


def _middle_candidates(bound: int) -> List[int]:
    """Coarse tile choices for dimensions beyond the emu-bounded three:
    fully inter-tile (1), fully intra-tile (bound), and a halfway point."""
    out = {1, bound}
    if bound >= 4:
        out.add(bound // 2)
    return sorted(out)


def _divisor_biased(candidates: List[int], bound: int) -> List[int]:
    """Prefer tile sizes dividing the bound (no remainder guards)."""
    exact = [t for t in candidates if bound % t == 0]
    return exact if len(exact) >= 3 else candidates


def optimize_temporal(
    func: Func,
    arch: ArchSpec,
    info: Optional[StatementInfo] = None,
    *,
    exhaustive: bool = False,
    use_emu: bool = True,
    order_step: bool = True,
    tracer=None,
    jobs: int = 1,
) -> TemporalResult:
    """Run Algorithm 2 on the main definition of ``func``.

    ``use_emu`` and ``order_step`` are ablation switches: disabling the
    former replaces the Algorithm-1 interference bounds with plain
    capacity bounds (no prefetch/conflict awareness), disabling the latter
    skips Step 2 and keeps the structural loop order.  Both default to the
    paper's full method.

    ``tracer`` (default: the ambient :func:`repro.obs.current_tracer`)
    receives structured search telemetry — ``candidate.pruned`` events
    with machine-readable reasons, ``search.bound`` events for the
    Algorithm-1 lattice caps, and a ``temporal.search`` /
    ``temporal.order`` span pair.  The returned ``stats`` are identical
    with or without a recording tracer.

    ``jobs`` evaluates the Step-1 tile lattice across that many worker
    processes (0 = auto); the chosen schedule, cost and ``stats`` counts
    are bit-identical to the serial scan (see :mod:`repro.core.parallel`).
    A recording tracer forces the serial path so per-candidate events
    keep their serial order.
    """
    info = info or analyze_func(func)
    patterns = extract_patterns(info)
    dts = info.dtype_size
    lc = arch.lc(dts)

    all_vars = [v.name for v in info.definition.all_vars()]
    bounds = {v: func.bound_of(v) for v in all_vars}
    column = _column_vars(patterns)
    c = info.output.leading_var
    if c is None:
        raise ValueError(
            f"{func.name}: output has no leading variable; temporal "
            "optimization needs a contiguous output dimension"
        )

    others = [v for v in all_vars if v != c]
    non_column = [v for v in others if v not in column]
    if not non_column:
        # Degenerate: every variable indexes some contiguous dimension.
        non_column = others

    l1_spec = arch.cache_level(1)
    l2_spec = arch.cache_level(2)
    l1_capacity = l1_spec.capacity_elements(dts)
    l2_capacity = l2_spec.capacity_elements(dts) // 2  # paper's halved L2
    threads = arch.total_threads

    tracer = tracer if tracer is not None else current_tracer()
    traced = tracer.enabled
    counter = CandidateCounter("temporal", tracer)

    best: Optional[Tuple[float, Dict[str, int], str, str, float, float]] = None

    c_cands = _divisor_biased(
        tile_candidates(bounds[c], bounds[c], quantum=lc, exhaustive=exhaustive),
        bounds[c],
    )
    # The column tile becomes the vector loop: a tile of one is useless.
    c_cands = [t for t in c_cands if t >= 2] or [bounds[c]]

    # References that the column variable walks with a non-unit stride
    # (e.g. syrk's A[j][k]) conflict in the L1 like a transposed array's
    # rows do; bound the column tile with the cache emulation the same way
    # Algorithm 3 bounds the tile height.
    strided_cap = bounds[c]
    for p in patterns if use_emu else ():
        stride = p.stride_of(c)
        if c in p.vars and p.leading_var != c and stride > lc:
            cap = emu_l1(
                arch,
                row_width_elems=lc,
                row_stride_elems=stride,
                max_rows=bounds[c],
                dts=dts,
            )
            strided_cap = min(strided_cap, max(lc, cap))
    if strided_cap < bounds[c]:
        if traced:
            # Trace-only: tiles the emulation keeps out of the lattice.
            # These never reach constraint checking, so they are *not*
            # part of ``stats`` — the counts stay identical untraced.
            tracer.event(
                EVENT_SEARCH_BOUND,
                phase="temporal",
                var=c,
                bound=strided_cap,
                source="emu_l1",
            )
            for t in c_cands:
                if t > strided_cap:
                    tracer.event(
                        EVENT_CANDIDATE_PRUNED,
                        phase="temporal",
                        reason=REASON_EMU_BOUND,
                        var=c,
                        tile=t,
                        bound=strided_cap,
                    )
        c_cands = [t for t in c_cands if t <= strided_cap] or [
            min(strided_cap, bounds[c])
        ]

    ctx = _TemporalContext(
        arch=arch,
        patterns=tuple(patterns),
        bounds=dict(bounds),
        c=c,
        non_column=tuple(non_column),
        l1_capacity=l1_capacity,
        l2_capacity=l2_capacity,
        threads=threads,
        dts=dts,
        exhaustive=exhaustive,
    )
    # A recording tracer needs per-candidate events in serial order, so
    # parallel evaluation only engages untraced (results are identical).
    parallel = resolve_jobs(jobs) > 1 and not traced
    groups: List[_TemporalGroup] = []

    # Placement choices: d2/d3 = 2nd/3rd innermost intra positions,
    # L = outermost intra (reuse loop), M = innermost inter (reuse loop).
    emu_excluded: Set[Tuple[str, int]] = set()
    with tracer.span("temporal.search", func=func.name):
        for t_c in c_cands:
            if use_emu:
                max_d2 = emu_l1(
                    arch,
                    row_width_elems=t_c,
                    row_stride_elems=bounds[c],
                    max_rows=max(bounds[v] for v in others) if others else 1,
                    dts=dts,
                )
                max_d3 = emu_l2(
                    arch,
                    row_width_elems=t_c,
                    row_stride_elems=bounds[c],
                    max_rows=max(bounds[v] for v in others) if others else 1,
                    dts=dts,
                )
            else:
                # Ablation: capacity-only bounds, no interference emulation.
                max_d2 = max(1, l1_capacity // max(1, t_c))
                max_d3 = max(1, l2_capacity // max(1, t_c))
            if traced:
                tracer.event(
                    EVENT_SEARCH_BOUND,
                    phase="temporal",
                    position="d2",
                    t_c=t_c,
                    bound=max_d2,
                    source="emu_l1" if use_emu else "capacity",
                )
                tracer.event(
                    EVENT_SEARCH_BOUND,
                    phase="temporal",
                    position="d3",
                    t_c=t_c,
                    bound=max_d3,
                    source="emu_l2" if use_emu else "capacity",
                )
            for d2, d3 in _placement_pairs(others):
                rest = [v for v in others if v not in (d2, d3)]
                if traced:
                    # Trace-only visibility into the lattice caps: tiles
                    # the Algorithm-1 bound keeps out of the candidate set
                    # (never evaluated, hence never in ``stats``).
                    for var, cap in ((d2, max_d2), (d3, max_d3)):
                        if not var or cap >= bounds[var]:
                            continue
                        full = _divisor_biased(
                            tile_candidates(
                                bounds[var], bounds[var], exhaustive=exhaustive
                            ),
                            bounds[var],
                        )
                        for t in full:
                            if t <= cap or (var, t) in emu_excluded:
                                continue
                            emu_excluded.add((var, t))
                            tracer.event(
                                EVENT_CANDIDATE_PRUNED,
                                phase="temporal",
                                reason=(
                                    REASON_EMU_BOUND
                                    if use_emu
                                    else REASON_CAPACITY
                                ),
                                var=var,
                                tile=t,
                                bound=cap,
                            )
                group = _TemporalGroup(
                    t_c=t_c,
                    d2=d2,
                    d3=d3,
                    max_d2=max_d2,
                    max_d3=max_d3,
                    rest=tuple(rest),
                )
                if parallel:
                    # Defer: groups are evaluated across workers below,
                    # merged in this exact construction order.
                    groups.append(group)
                    continue
                outcome = _evaluate_temporal_group(
                    ctx,
                    group,
                    counter=counter,
                    tracer=tracer if traced else None,
                    checkpoints=True,
                )
                if outcome.best is not None and (
                    best is None or outcome.best[0] < best[0]
                ):
                    best = outcome.best

        if parallel and groups:
            merged = merge_outcomes(
                evaluate_groups(
                    _evaluate_temporal_group,
                    ctx,
                    groups,
                    jobs=jobs,
                    checkpoint_label="temporal tile search",
                )
            )
            counter.stats.considered += merged.considered
            for reason, count in merged.pruned.items():
                counter.stats.pruned[reason] = (
                    counter.stats.pruned.get(reason, 0) + count
                )
            best = merged.best

    if best is None:
        # No candidate satisfied the fit/parallel constraints; fall back to
        # untransformed loops (tiles equal to bounds).
        tiles = dict(bounds)
        inter, intra = [], list(all_vars)
        return TemporalResult(
            tiles=tiles,
            inter_order=inter,
            intra_order=intra,
            parallel_var=None,
            cost=float("inf"),
            order_cost_value=0.0,
            stats=counter.stats,
            ws_l1=0.0,
            ws_l2=0.0,
        )

    cost, tiles, reuse_l, reuse_m, ws1, ws2 = best

    with tracer.span("temporal.order", func=func.name):
        inter_order, intra_order, corder = _order_step(
            tiles,
            bounds,
            all_vars,
            column,
            c,
            reuse_l,
            reuse_m,
            search=order_step,
        )
    parallel_var = inter_order[0] if inter_order else None
    return TemporalResult(
        tiles=tiles,
        inter_order=inter_order,
        intra_order=intra_order,
        parallel_var=parallel_var,
        cost=cost,
        order_cost_value=corder,
        stats=counter.stats,
        ws_l1=ws1,
        ws_l2=ws2,
    )


def _placement_pairs(others: Sequence[str]) -> List[Tuple[Optional[str], Optional[str]]]:
    """(d2, d3) choices: ordered pairs of distinct non-column... distinct
    variables for the emu-bounded second and third intra positions."""
    if not others:
        return [(None, None)]
    if len(others) == 1:
        return [(others[0], None)]
    return [
        (a, b) for a, b in itertools.permutations(others, 2)
    ]


@dataclass(frozen=True)
class _TemporalContext:
    """Search-invariant inputs of the Step-1 lattice, shipped to workers
    once per process (see :mod:`repro.core.parallel`)."""

    arch: ArchSpec
    patterns: Tuple[RefPattern, ...]
    bounds: Dict[str, int]
    c: str
    non_column: Tuple[str, ...]
    l1_capacity: int
    l2_capacity: int
    threads: int
    dts: int
    exhaustive: bool


@dataclass(frozen=True)
class _TemporalGroup:
    """One lattice group: a ``(T_c, d2, d3)`` placement plus its
    Algorithm-1 bounds.  The candidate tile lists are recomputed inside
    the group (they are deterministic functions of these fields), keeping
    the pickled descriptor tiny."""

    t_c: int
    d2: Optional[str]
    d3: Optional[str]
    max_d2: int
    max_d3: int
    rest: Tuple[str, ...]


def _evaluate_temporal_group(
    ctx: _TemporalContext,
    group: _TemporalGroup,
    *,
    counter: Optional[CandidateCounter] = None,
    tracer=None,
    checkpoints: bool = False,
) -> GroupOutcome:
    """Evaluate every candidate of one ``(T_c, d2, d3)`` group, in the
    exact order the serial scan visits them.

    Serial callers pass the live ``counter``/``tracer`` and get per-
    candidate accounting, trace events and deadline checkpoints exactly
    as before; workers call with the defaults and the accounting comes
    back in the :class:`GroupOutcome`.
    """
    bounds = ctx.bounds
    d2, d3 = group.d2, group.d3
    d2_cands = (
        _divisor_biased(
            tile_candidates(bounds[d2], group.max_d2, exhaustive=ctx.exhaustive),
            bounds[d2],
        )
        if d2
        else [None]
    )
    d3_cands = (
        _divisor_biased(
            tile_candidates(bounds[d3], group.max_d3, exhaustive=ctx.exhaustive),
            bounds[d3],
        )
        if d3
        else [None]
    )
    rest_cands = [_middle_candidates(bounds[v]) for v in group.rest]
    out = GroupOutcome()
    for t_d2 in d2_cands:
        for t_d3 in d3_cands:
            for rest_tiles in itertools.product(*rest_cands):
                if checkpoints:
                    # Cooperative deadline probe: Algorithm 2's search
                    # must stay interruptible per candidate.
                    try:
                        checkpoint("temporal tile search")
                    except DeadlineExceeded:
                        if tracer is not None:
                            tracer.event(
                                EVENT_CANDIDATE_PRUNED,
                                phase="temporal",
                                reason=REASON_DEADLINE,
                            )
                        raise
                tiles = {ctx.c: group.t_c}
                if d2:
                    tiles[d2] = t_d2
                if d3:
                    tiles[d3] = t_d3
                tiles.update(zip(group.rest, rest_tiles))
                outcome, reason = _evaluate_tiles(
                    ctx.arch,
                    ctx.patterns,
                    tiles,
                    bounds,
                    ctx.c,
                    d2,
                    d3,
                    group.rest,
                    ctx.non_column,
                    ctx.l1_capacity,
                    ctx.l2_capacity,
                    ctx.threads,
                    ctx.dts,
                )
                out.considered += 1
                if counter is not None:
                    counter.considered()
                if outcome is None:
                    out.pruned[reason] = out.pruned.get(reason, 0) + 1
                    if counter is not None:
                        counter.pruned(reason, tiles=dict(tiles))
                    continue
                if out.best is None or outcome[0] < out.best[0]:
                    out.best = outcome
    return out


def _evaluate_tiles(
    arch: ArchSpec,
    patterns: Sequence[RefPattern],
    tiles: Dict[str, int],
    bounds: Dict[str, int],
    c: str,
    d2: Optional[str],
    d3: Optional[str],
    rest: Sequence[str],
    non_column: Sequence[str],
    l1_capacity: int,
    l2_capacity: int,
    threads: int,
    dts: int,
) -> Tuple[
    Optional[Tuple[float, Dict[str, int], str, str, float, float]],
    Optional[str],
]:
    """Check constraints and price one tile assignment.

    Returns ``((cost, tiles, L, M, wsL1, wsL2), None)`` for a valid
    candidate, or ``(None, reason)`` with a machine-readable rejection
    reason from :data:`repro.obs.events.PRUNE_REASONS`.
    """
    # The cost is evaluated against the *structural* tiled nest of the
    # paper's derivation, independent of degenerate tile values (a tile of
    # one simply has a trivial intra loop there): intra-tile order
    # ``L=d3 > middles > d2 > c`` and inter-tile order ``... > cc`` — L1
    # reuse anchored at the outermost intra loop, L2 reuse at the column
    # variable's (innermost) inter-tile loop, exactly as in Listing 1.
    middle = list(rest)
    chain = [v for v in (d3, d2) if v]
    reuse_l = chain[0] if chain else c
    intra_order = (
        ([chain[0]] if chain else [])
        + middle
        + chain[1:]
        + [c]
    )
    reuse_m = c
    inter_order = [v for v in intra_order if v != c] + [c]

    # The parallel loop: a non-column inter-tile loop subject to Eq. 13
    # (at least one tile iteration per hardware thread).
    trips = {v: ceil_div(bounds[v], tiles[v]) for v in tiles}
    par_pool = [v for v in non_column if trips[v] > 1]
    if not par_pool or max(trips[v] for v in par_pool) < threads:
        return None, REASON_PARALLELISM
    # A schedule also needs at least one non-trivial intra loop besides the
    # vector loop to anchor L1 reuse, unless the nest is two-deep.
    if tiles.get(c, 1) < 2:
        return None, REASON_VECTOR_TILE

    lc = arch.lc(dts)
    ws1 = working_set_l1(patterns, tiles, intra_order, lc)
    ws2 = working_set_l2(patterns, tiles, intra_order, lc)
    if ws1 > l1_capacity or ws2 > l2_capacity:
        return None, REASON_CAPACITY

    cost = total_cost(
        arch, patterns, tiles, bounds, intra_order, inter_order, dts
    )
    return (cost, dict(tiles), reuse_l, reuse_m, ws1, ws2), None


def _order_step(
    tiles: Dict[str, int],
    bounds: Dict[str, int],
    all_vars: Sequence[str],
    column: Set[str],
    c: str,
    reuse_l: str,
    reuse_m: str,
    search: bool = True,
) -> Tuple[List[str], List[str], float]:
    """Step 2: choose the loop order minimizing C_order (Eq. 12).

    Inter-tile loops exist for variables with more than one tile trip;
    intra-tile loops for tiles larger than one.  Fixed positions: the
    column variable stays innermost intra, the chosen reuse loops stay at
    their reuse positions, and a parallelizable (non-column) variable with
    the most trips is kept outermost inter.
    """
    trips = {v: ceil_div(bounds[v], tiles[v]) for v in all_vars}
    inter_vars = [v for v in all_vars if trips[v] > 1]
    intra_vars = [v for v in all_vars if tiles[v] > 1]

    # Outermost inter loop: prefer non-column variables, largest trips —
    # this is the loop that gets parallelized.
    par_pool = [v for v in inter_vars if v not in column] or inter_vars
    par_var = max(par_pool, key=lambda v: trips[v]) if par_pool else None

    free_inter = [v for v in inter_vars if v not in (par_var, reuse_m)]
    free_intra = [
        v for v in intra_vars if v not in (reuse_l, c)
    ]

    best_cost = float("inf")
    best_inter: List[str] = []
    best_intra: List[str] = []
    m_tail = [reuse_m] if reuse_m in inter_vars and reuse_m != par_var else []
    l_head = [reuse_l] if reuse_l in intra_vars and reuse_l != c else []

    if not search:
        # Ablation: skip Step 2, keep the structural order.
        inter = ([par_var] if par_var else []) + free_inter + m_tail
        intra = l_head + free_intra + ([c] if c in intra_vars else [c])
        full = [(v, "inter") for v in inter] + [(v, "intra") for v in intra]
        return inter, intra, order_cost(full, tiles, bounds)

    for inter_mid in itertools.permutations(free_inter):
        inter = ([par_var] if par_var else []) + list(inter_mid) + m_tail
        checkpoint("temporal order search")
        for intra_mid in itertools.permutations(free_intra):
            intra = l_head + list(intra_mid) + [c]
            full = [(v, "inter") for v in inter] + [(v, "intra") for v in intra]
            cost = order_cost(full, tiles, bounds)
            if cost < best_cost:
                best_cost = cost
                best_inter = inter
                best_intra = intra
    if not best_intra:
        best_intra = [c]
    return best_inter, best_intra, best_cost
