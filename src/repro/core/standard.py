"""Sec. 3.4: schedule construction — tiling, ordering, parallelization,
vectorization and non-temporal stores.

The optimizers in :mod:`repro.core.temporal` / :mod:`repro.core.spatial`
decide *what* to do (tile sizes, loop order); this module turns those
decisions — or the decision to do nothing — into a concrete
:class:`~repro.ir.schedule.Schedule`:

* each tiled variable is split into ``<v>_o`` / ``<v>_i``; variables whose
  tile equals the bound keep a single (intra) loop, and tiles of one keep a
  single (inter) loop;
* loops are reordered to ``[inter block][intra block]``;
* the innermost intra loop is vectorized at the platform's native width;
* the outermost inter-tile loop is parallelized — after fusing it with the
  next inter-tile loop when its trip count alone cannot feed every
  hardware thread (the paper's "fuse the outer inter-tile loops when
  possible");
* the ``store_nontemporal`` directive is attached when the classifier
  proved the output is never re-read and the ISA supports NT stores.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.arch import ArchSpec
from repro.ir.func import Func
from repro.ir.schedule import Schedule
from repro.util import ceil_div


def inter_loop_name(var: str, tiles: Dict[str, int], bounds: Dict[str, int]) -> str:
    """Scheduled loop name holding ``var``'s inter-tile iteration."""
    if tiles[var] >= bounds[var]:
        raise ValueError(f"{var} has no inter-tile loop (tile covers bound)")
    return var if tiles[var] == 1 else f"{var}_o"

def intra_loop_name(var: str, tiles: Dict[str, int], bounds: Dict[str, int]) -> str:
    """Scheduled loop name holding ``var``'s intra-tile iteration."""
    if tiles[var] == 1:
        raise ValueError(f"{var} has no intra-tile loop (tile of 1)")
    return var if tiles[var] >= bounds[var] else f"{var}_i"


def build_schedule(
    func: Func,
    arch: ArchSpec,
    tiles: Dict[str, int],
    inter_order: Sequence[str],
    intra_order: Sequence[str],
    *,
    parallelize: bool = True,
    vectorize: bool = True,
    nontemporal: bool = False,
) -> Schedule:
    """Materialize optimizer decisions into a Schedule.

    Parameters
    ----------
    func:
        The Func to schedule (its main definition).
    arch:
        Platform (vector width, threads for the fusion decision).
    tiles:
        Tile size for every loop variable of the definition.
    inter_order / intra_order:
        Variables with inter-tile (trips > 1) / intra-tile (tile > 1)
        loops, outermost first.
    """
    schedule = Schedule(func)
    bounds = {v: func.bound_of(v) for v in tiles}

    # 1. Splits.
    for var, tile in tiles.items():
        if 1 < tile < bounds[var]:
            schedule.split(var, f"{var}_o", f"{var}_i", tile)

    # 2. Reorder: inter block then intra block.
    final: List[str] = []
    for var in inter_order:
        final.append(inter_loop_name(var, tiles, bounds))
    for var in intra_order:
        final.append(intra_loop_name(var, tiles, bounds))
    if len(final) > 1:
        schedule.reorder_outer_to_inner(*final)

    # 3. Vectorize the innermost intra loop at native width.
    if vectorize and intra_order:
        lanes = arch.vector_lanes(func.dtype.size)
        if lanes > 1:
            inner_var = intra_order[-1]
            inner_name = intra_loop_name(inner_var, tiles, bounds)
            inner_extent = schedule.loops()[
                schedule.loop_names().index(inner_name)
            ].extent
            if inner_extent >= 2:
                schedule.vectorize(inner_name, width=lanes)

    # 4. Parallelize the outermost inter-tile loop, fusing outward-adjacent
    #    inter loops while a single loop cannot feed all threads.
    if parallelize and inter_order:
        threads = arch.total_threads
        outer_var = inter_order[0]
        outer_name = inter_loop_name(outer_var, tiles, bounds)
        trips = ceil_div(bounds[outer_var], tiles[outer_var])
        fused_index = 0
        while (
            trips < threads
            and fused_index + 1 < len(inter_order)
        ):
            nxt_var = inter_order[fused_index + 1]
            nxt_name = inter_loop_name(nxt_var, tiles, bounds)
            fused = f"{outer_name}_{nxt_name}_f"
            schedule.fuse(outer_name, nxt_name, fused)
            trips *= ceil_div(bounds[nxt_var], tiles[nxt_var])
            outer_name = fused
            fused_index += 1
        schedule.parallel(outer_name)

    # 5. Non-temporal stores (the paper's new directive).
    if nontemporal and arch.supports_nt_stores:
        schedule.store_nontemporal()
    return schedule


def untransformed_schedule(
    func: Func,
    arch: ArchSpec,
    *,
    parallelize: bool = True,
    vectorize: bool = True,
    nontemporal: bool = False,
) -> Schedule:
    """The no-loop-transformation path of the flow (Fig. 2's bottom-right):
    keep the definition's loop order, vectorize the innermost contiguous
    loop, parallelize the outermost pure loop."""
    schedule = Schedule(func)
    loops = schedule.loops()
    if vectorize:
        lanes = arch.vector_lanes(func.dtype.size)
        inner = loops[-1]
        if lanes > 1 and inner.extent >= 2:
            schedule.vectorize(inner.name, width=lanes)
    if parallelize and len(schedule.loops()) > 1:
        schedule.parallel(schedule.loops()[0].name)
    if nontemporal and arch.supports_nt_stores:
        schedule.store_nontemporal()
    return schedule
