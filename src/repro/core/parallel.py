"""Deterministic parallel candidate evaluation for the Algorithm 2/3 searches.

The tile-lattice searches are embarrassingly parallel: every candidate is
priced independently and only the running argmin couples them.  This
module splits a search's lattice into its natural *groups* (one group per
outer-loop state — ``(T_c, d2, d3)`` placements for Algorithm 2, one per
``T_width`` for Algorithm 3), evaluates groups across worker processes,
and merges the per-group results **in group order** so the outcome is
bit-identical to the serial scan:

* the serial search keeps the *first* candidate of minimal cost (strict
  ``<`` against the incumbent); each group likewise returns its first
  minimum, and an in-order merge with strict ``<`` reproduces the global
  first-minimum exactly;
* candidate accounting (``CandidateStats.considered`` and the per-reason
  pruned counts) is summed across groups, which equals the serial count
  because every group evaluates exactly the lattice slice the serial loop
  would.

Process isolation mirrors :mod:`repro.sweep`'s worker design — work is
shipped to fresh processes so a crash costs one search, not the driver —
but uses :class:`concurrent.futures.ProcessPoolExecutor` with pickled
group descriptors instead of a JSON protocol: group evaluation is a pure
function of small value objects, and the per-search pool amortizes over
hundreds of groups.  Cooperative deadlines stay in the parent: the
driver runs a :func:`repro.util.checkpoint` as each group completes and
cancels the remaining futures on expiry, the same cancellation discipline
as :class:`repro.sweep.SweepRunner`'s timeout path.

Tracing and parallelism are mutually exclusive by design: per-candidate
``candidate.pruned`` events must interleave in serial order to keep
traced event streams bit-identical, so searches fall back to the serial
path whenever a recording tracer is active (the search *results* are
identical either way).
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.util import checkpoint

__all__ = [
    "GroupOutcome",
    "default_jobs",
    "evaluate_groups",
    "resolve_jobs",
]


@dataclass
class GroupOutcome:
    """What evaluating one lattice group produced.

    ``best`` is the group's first candidate of minimal cost (an opaque
    tuple whose first element is the cost), or ``None`` when every
    candidate was rejected.  ``considered``/``pruned`` are the group's
    slice of the canonical candidate accounting.
    """

    best: Optional[Tuple] = None
    considered: int = 0
    pruned: Dict[str, int] = field(default_factory=dict)


def default_jobs() -> int:
    """A sensible worker count for ``jobs=0`` / ``jobs="auto"``: the CPU
    count, capped so tiny machines and huge ones both behave.

    On a single-core host this is 1 — the serial path — because pool
    setup costs real time there and can never be amortized
    (BENCH_search.json records cold ``--jobs 4`` at 0.58x on a 1-CPU
    container).
    """
    return max(1, min(8, os.cpu_count() or 1))


def resolve_jobs(jobs) -> int:
    """Normalize a ``jobs`` request to a concrete worker count.

    ``0`` and the string ``"auto"`` both mean :func:`default_jobs`
    (``os.cpu_count()`` capped at 8, degrading to the serial path on
    single-core hosts); positive integers are taken literally; anything
    else is an error.
    """
    if jobs == "auto":
        return default_jobs()
    if isinstance(jobs, bool) or not isinstance(jobs, int):
        raise ValueError(
            f"jobs must be an integer >= 0 or 'auto', got {jobs!r}"
        )
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0 (0 = auto), got {jobs}")
    return default_jobs() if jobs == 0 else jobs


def _pool_context():
    """Prefer ``fork`` (cheap, inherits the warm interpreter) where the
    platform offers it; fall back to the default start method elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


# Worker-side state, installed once per worker by the pool initializer so
# the (comparatively large) evaluation context is pickled once per worker
# instead of once per group.
_WORKER_EVAL: Optional[Callable] = None
_WORKER_CTX = None


def _init_worker(evaluate: Callable, ctx) -> None:
    global _WORKER_EVAL, _WORKER_CTX
    _WORKER_EVAL = evaluate
    _WORKER_CTX = ctx


def _run_group(index: int, group) -> Tuple[int, GroupOutcome]:
    assert _WORKER_EVAL is not None
    return index, _WORKER_EVAL(_WORKER_CTX, group)


def merge_outcomes(
    outcomes: Sequence[GroupOutcome],
) -> GroupOutcome:
    """Fold per-group outcomes (in group order) into one.

    Equivalent to the serial scan: strict ``<`` keeps the earliest
    minimum, counts are summed, pruned reasons merge in first-seen order.
    """
    total = GroupOutcome()
    for outcome in outcomes:
        total.considered += outcome.considered
        for reason, count in outcome.pruned.items():
            total.pruned[reason] = total.pruned.get(reason, 0) + count
        if outcome.best is not None and (
            total.best is None or outcome.best[0] < total.best[0]
        ):
            total.best = outcome.best
    return total


def evaluate_groups(
    evaluate: Callable,
    ctx,
    groups: Sequence,
    *,
    jobs: int,
    checkpoint_label: str,
) -> List[GroupOutcome]:
    """Evaluate every group with ``jobs`` worker processes, in-order.

    ``evaluate(ctx, group) -> GroupOutcome`` must be a module-level
    callable (it is shipped to worker processes by the pool initializer).
    Results come back as a list parallel to ``groups`` regardless of
    completion order.  The parent checkpoints the ambient
    :class:`~repro.util.Deadline` as results arrive; on expiry the
    remaining futures are cancelled and the exception propagates.
    """
    jobs = min(resolve_jobs(jobs), len(groups)) or 1
    if jobs <= 1 or len(groups) <= 1:
        out = []
        for group in groups:
            checkpoint(checkpoint_label)
            out.append(evaluate(ctx, group))
        return out

    results: List[Optional[GroupOutcome]] = [None] * len(groups)
    with ProcessPoolExecutor(
        max_workers=jobs,
        mp_context=_pool_context(),
        initializer=_init_worker,
        initargs=(evaluate, ctx),
    ) as pool:
        futures = {
            pool.submit(_run_group, index, group): index
            for index, group in enumerate(groups)
        }
        pending = set(futures)
        try:
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    index, outcome = future.result()
                    results[index] = outcome
                checkpoint(checkpoint_label)
        except BaseException:
            for future in pending:
                future.cancel()
            raise
    assert all(r is not None for r in results)
    return results  # type: ignore[return-value]
