"""The one CLI exit-code protocol, shared by every entry point.

Every ``repro`` surface — ``python -m repro`` and its subcommands,
``python -m repro.experiments``, the serve/fleet/chaos/loadgen/tune
commands — maps outcomes onto this single table (also documented in
docs/API.md, "Exit codes"):

======  ==================  ==============================================
code    name                meaning
======  ==================  ==============================================
0       EXIT_OK             success
2       EXIT_USAGE          bad arguments (argparse's own convention)
3       EXIT_FALLBACK       completed, but degraded (lenient fallback ran)
4       EXIT_HARD           hard failure (ReproError: bad spec, no result)
5       EXIT_UNAVAILABLE    service unavailable / quarantined cells remain
6       EXIT_BIND           could not bind the requested host:port
======  ==================  ==============================================

``EXIT_QUARANTINED`` is an alias of ``EXIT_UNAVAILABLE``: a sweep or
tune that finishes with quarantined cells is *partially* unavailable in
exactly the sense a shed request is — retrying later may succeed.

History: these constants grew up scattered across ``repro.__main__``,
the sweep runner, and the experiments driver with per-module literals.
They are defined here once; the historical homes re-export them, so
``from repro.sweep.runner import EXIT_QUARANTINED`` keeps working.
"""

from __future__ import annotations

EXIT_OK = 0
EXIT_USAGE = 2
EXIT_FALLBACK = 3
EXIT_HARD = 4
EXIT_UNAVAILABLE = 5
EXIT_BIND = 6

#: Alias: quarantined cells leave the run in the same "retry later may
#: help" state as an unavailable service.
EXIT_QUARANTINED = EXIT_UNAVAILABLE

__all__ = [
    "EXIT_BIND",
    "EXIT_FALLBACK",
    "EXIT_HARD",
    "EXIT_OK",
    "EXIT_QUARANTINED",
    "EXIT_UNAVAILABLE",
    "EXIT_USAGE",
]
