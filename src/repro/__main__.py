"""Command-line interface.

Examples::

    python -m repro optimize matmul --platform i7-5930k
    python -m repro optimize tpm --platform i7-6700 --show-nest
    python -m repro compare gemm --platform arm-a15 --budget 30000
    python -m repro codegen matmul -o matmul_kernel.c
    python -m repro list

``optimize`` runs the paper's flow on a benchmark and prints the decision
trail; ``compare`` measures all techniques on the simulator (one Fig. 4
row); ``codegen`` emits the optimized schedule as a C translation unit.
"""

from __future__ import annotations

import argparse
import sys

from repro.arch import PLATFORMS, platform_by_name
from repro.baselines import Autotuner, autoschedule, baseline_schedule
from repro.bench import EXTRAS, SUITE, make_benchmark, make_extra, size_for
from repro.core import optimize
from repro.ir import lower, print_nest
from repro.ir.codegen_c import codegen
from repro.sim import Machine


def _make_case(name: str, fast: bool):
    if name in SUITE:
        return make_benchmark(name, **size_for(name, small=fast))
    if name in EXTRAS:
        return make_extra(name)
    raise SystemExit(
        f"unknown benchmark {name!r}; see `python -m repro list`"
    )


def cmd_list(_args) -> int:
    print("Table 4 benchmarks:", ", ".join(sorted(SUITE)))
    print("extra kernels:     ", ", ".join(sorted(EXTRAS)))
    print("platforms:         ", ", ".join(sorted(PLATFORMS)))
    return 0


def cmd_optimize(args) -> int:
    arch = platform_by_name(args.platform)
    case = _make_case(args.benchmark, args.fast)
    for stage in case.pipeline:
        result = optimize(stage, arch, allow_nti=not args.no_nti)
        print(result.describe())
        if args.show_nest:
            nests = lower(stage, result.schedule)
            print(print_nest(nests[-1]))
        if args.halide:
            from repro.ir.halide_out import emit_halide

            print(emit_halide(result.schedule))
        print()
    return 0


def cmd_compare(args) -> int:
    arch = platform_by_name(args.platform)
    machine = Machine(arch, line_budget=args.budget)
    times = {}

    def fresh():
        return _make_case(args.benchmark, args.fast)

    case = fresh()
    times["proposed"] = machine.time_pipeline(
        case.pipeline,
        {f: optimize(f, arch, allow_nti=False).schedule for f in case.funcs},
    )
    case = fresh()
    times["proposed+NTI"] = machine.time_pipeline(
        case.pipeline,
        {f: optimize(f, arch, allow_nti=True).schedule for f in case.funcs},
    )
    case = fresh()
    times["auto-scheduler"] = machine.time_pipeline(
        case.pipeline, {f: autoschedule(f, arch).schedule for f in case.funcs}
    )
    case = fresh()
    times["baseline"] = machine.time_pipeline(
        case.pipeline, {f: baseline_schedule(f, arch) for f in case.funcs}
    )
    if args.autotune:
        case = fresh()
        tuner = Autotuner(machine, evaluations=args.autotune, seed=0)
        times[f"autotuner({args.autotune})"] = machine.time_pipeline(
            case.pipeline, {f: tuner.tune(f).schedule for f in case.funcs}
        )
    fastest = min(times.values())
    print(f"{args.benchmark} on {arch.name}:")
    for name, ms in sorted(times.items(), key=lambda kv: kv[1]):
        print(f"  {name:22s} {ms:10.2f} ms   rel {fastest / ms:4.2f}")
    return 0


def cmd_codegen(args) -> int:
    arch = platform_by_name(args.platform)
    case = _make_case(args.benchmark, args.fast)
    nests = []
    for stage in case.pipeline:
        result = optimize(stage, arch, allow_nti=not args.no_nti)
        nests.extend(lower(stage, result.schedule))
    source = codegen(nests, function_name=args.benchmark.replace("-", "_"))
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(source)
        print(f"wrote {args.output}")
    else:
        print(source)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Prefetcher-aware loop optimization (CGO'18 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks and platforms")

    def common(p):
        p.add_argument("benchmark")
        p.add_argument("--platform", default="i7-5930k",
                       help="i7-5930k | i7-6700 | arm-a15")
        p.add_argument("--fast", action="store_true",
                       help="scaled-down problem size")
        p.add_argument("--no-nti", action="store_true",
                       help="disable non-temporal stores")

    p_opt = sub.add_parser("optimize", help="run the optimization flow")
    common(p_opt)
    p_opt.add_argument("--show-nest", action="store_true",
                       help="print the lowered pseudo-C nest")
    p_opt.add_argument("--halide", action="store_true",
                       help="print the schedule as Halide C++ code")

    p_cmp = sub.add_parser("compare", help="simulate all techniques")
    common(p_cmp)
    p_cmp.add_argument("--budget", type=int, default=40_000,
                       help="trace line budget per nest")
    p_cmp.add_argument("--autotune", type=int, default=0, metavar="EVALS",
                       help="also run the autotuner with this many evals")

    p_gen = sub.add_parser("codegen", help="emit C for the best schedule")
    common(p_gen)
    p_gen.add_argument("-o", "--output", help="write to a file")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "list": cmd_list,
        "optimize": cmd_optimize,
        "compare": cmd_compare,
        "codegen": cmd_codegen,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
