"""Command-line interface.

Examples::

    python -m repro optimize matmul --platform i7-5930k
    python -m repro optimize tpm --platform i7-6700 --show-nest
    python -m repro optimize matmul --lenient --deadline-ms 200
    python -m repro compare gemm --platform arm-a15 --budget 30000
    python -m repro codegen matmul -o matmul_kernel.c
    python -m repro list

``optimize`` runs the paper's flow on a benchmark and prints the decision
trail; ``compare`` measures all techniques on the simulator (one Fig. 4
row); ``codegen`` emits the optimized schedule as a C translation unit;
``sweep`` regenerates every table and figure through the crash-safe,
resumable sweep runner (``python -m repro sweep --fast --jobs 4``; same
flags as ``python -m repro.experiments``, exit code 5 when cells were
quarantined).

Observability: ``--trace PATH`` on ``optimize`` / ``compare`` /
``codegen`` / ``sweep`` streams a schema-versioned JSONL event log
(``repro-trace-v1``, see :mod:`repro.obs`) of the whole run — candidate
pruned/considered telemetry, emu bounds, simulator counters, sweep cell
lifecycle.  ``python -m repro trace PATH`` renders the per-phase summary,
and ``trace PATH --validate`` schema-checks the log (exit 4 on any
violation).

Robustness posture (see ``docs/API.md``, *Failure modes*):

* default / ``--strict`` — any optimizer failure aborts with a clean
  one-line error and exit code 4 (no traceback);
* ``--lenient`` — failures degrade down the fallback chain of
  :func:`repro.robust.safe_optimize`; the run still succeeds, prints the
  diagnostics, and exits with code 3 so scripts can tell a degraded run
  from a clean one;
* ``--deadline-ms`` — per-stage optimizer budget in either mode.

Serving: ``python -m repro serve --port 8377 --schedule-cache cache.jsonl``
starts the long-running optimization service (:mod:`repro.serve` —
request coalescing, micro-batching, admission control, ``/metrics``),
and ``python -m repro submit matmul --port 8377`` submits one request to
it and prints the result.

Fleet: ``python -m repro fleet --workers 4`` boots a consistent-hash
router in front of N serve worker processes (health-gated failover,
crash restarts, flap quarantine — :mod:`repro.fleet`); ``repro fleet
status`` and ``repro fleet restart`` talk to a running router
(``restart`` performs the zero-loss rolling drain/restart).  ``python -m
repro loadgen`` drives a seeded open-loop workload against a server or
fleet and writes/gates the ``BENCH_serve.json`` baseline.

Exit codes: 0 = ok, 2 = argparse usage error, 3 = completed but fell back
to a degraded schedule (or a degraded fleet in ``fleet status``), 4 =
hard failure, 5 = service unavailable or overloaded (``submit`` could
not get a result; ``sweep`` quarantined cells), 6 = cannot bind the
requested address/port (``serve`` / ``fleet``: it is already in use).
"""

from __future__ import annotations

import argparse
import contextlib
import errno
import sys

from repro.arch import PLATFORMS, platform_by_name
from repro.baselines import Autotuner, autoschedule, baseline_schedule
from repro.bench import EXTRAS, SUITE, make_benchmark, make_extra, size_for
from repro.ir import lower, print_nest
from repro.ir.codegen_c import codegen
from repro.obs import (
    JsonlTracer,
    activate_tracer,
    read_trace,
    render_summary,
    validate_trace,
)
from repro.core.exitcodes import (
    EXIT_BIND,
    EXIT_FALLBACK,
    EXIT_HARD,
    EXIT_OK,
    EXIT_UNAVAILABLE,
    EXIT_USAGE,
)
from repro.robust import FallbackPolicy, safe_optimize
from repro.sim import Machine
from repro.util import ReproError


def _report_bind_error(host: str, port: int, exc: OSError, *, what: str) -> int:
    """Friendly bind-failure report; exit 6 for ports that are taken."""
    print(
        f"error: cannot listen on {host}:{port}: {exc.strerror or exc}",
        file=sys.stderr,
    )
    if exc.errno == errno.EADDRINUSE:
        print(
            f"hint: port {port} is already in use — pick another --port, "
            f"or stop the other {what} first",
            file=sys.stderr,
        )
        return EXIT_BIND
    print(
        "hint: pick another --port or --host (is the address local?)",
        file=sys.stderr,
    )
    return EXIT_HARD


def _jobs_arg(value: str):
    """argparse type for ``--jobs``: a non-negative integer or ``auto``."""
    if value == "auto":
        return "auto"
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"must be an integer or 'auto', got {value!r}"
        ) from None


def _kv_arg(value: str, *, flag: str, cast, what: str):
    """Parse ``name=value,name=value`` flag payloads (``--dims`` etc.)."""
    out = {}
    for item in value.split(","):
        name, sep, raw = item.partition("=")
        name = name.strip()
        if not sep or not name:
            raise argparse.ArgumentTypeError(
                f"{flag} wants NAME=VALUE[,NAME=VALUE...], got {item!r}"
            )
        try:
            out[name] = cast(raw.strip())
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"{flag}: {name}={raw.strip()!r} is not {what}"
            ) from None
    return out


def _dims_arg(value: str):
    return _kv_arg(value, flag="--dims", cast=int, what="an integer")


def _dtypes_arg(value: str):
    return _kv_arg(value, flag="--dtypes", cast=str, what="a dtype name")


def _param_arg(value: str):
    pairs = _kv_arg(value, flag="--param", cast=float, what="a number")
    return list(pairs.items())


def _make_case(name: str, fast: bool):
    if name in SUITE:
        return make_benchmark(name, **size_for(name, small=fast))
    if name in EXTRAS:
        return make_extra(name)
    raise SystemExit(
        f"unknown benchmark {name!r}; see `python -m repro list`"
    )


def _resolve_case(args):
    """The target of a CLI run: a named benchmark XOR a ``--spec``."""
    if (args.benchmark is None) == (args.spec is None):
        raise SystemExit(
            "pass exactly one of a benchmark name or --spec "
            "(see `python -m repro list` for names)"
        )
    if args.spec is None:
        if args.dims or args.dtypes or args.params:
            raise SystemExit(
                "--dims/--dtypes/--param are only meaningful with --spec"
            )
        return _make_case(args.benchmark, args.fast)
    if args.dims is None:
        raise SystemExit(
            "--spec needs --dims (loop extents, e.g. "
            "--dims i=512,j=512,k=512)"
        )
    from repro.bench.suite import BenchmarkCase
    from repro.frontend import lower_spec
    from repro.util import ValidationError

    params = dict(p for group in (args.params or []) for p in group)
    try:
        lowered = lower_spec(
            args.spec, args.dims, dtypes=args.dtypes, params=params or None
        )
    except ValidationError as exc:
        raise SystemExit(f"invalid --spec: {exc}") from None
    return BenchmarkCase(
        name=lowered.name,
        description="kernel spec",
        pipeline=lowered.pipeline,
        problem_size="x".join(str(v) for v in args.dims.values()),
    )


def _resolve_platform(name: str):
    """Friendly lookup: a typo'd platform must not print a traceback."""
    try:
        return platform_by_name(name)
    except KeyError:
        raise SystemExit(
            f"unknown platform {name!r}; see `python -m repro list`"
        ) from None


def _policy(args, *, allow_nti: bool = True) -> FallbackPolicy:
    try:
        jobs = getattr(args, "jobs", 1)
        if args.lenient:
            return FallbackPolicy.lenient(
                deadline_ms=args.deadline_ms, allow_nti=allow_nti, jobs=jobs
            )
        return FallbackPolicy.strict_policy(
            deadline_ms=args.deadline_ms, allow_nti=allow_nti, jobs=jobs
        )
    except ValueError as exc:
        # e.g. --deadline-ms -5: a flag typo must not print a traceback.
        raise SystemExit(f"invalid options: {exc}") from None


def cmd_list(_args) -> int:
    print("Table 4 benchmarks:", ", ".join(sorted(SUITE)))
    print("extra kernels:     ", ", ".join(sorted(EXTRAS)))
    print("platforms:         ", ", ".join(sorted(PLATFORMS)))
    return EXIT_OK


def cmd_optimize(args) -> int:
    arch = _resolve_platform(args.platform)
    case = _resolve_case(args)
    policy = _policy(args, allow_nti=not args.no_nti)
    cache = None
    if args.schedule_cache:
        from repro.cache import ScheduleCache

        cache = ScheduleCache(args.schedule_cache)
    fell_back = False
    for stage in case.pipeline:
        safe = safe_optimize(stage, arch, policy, cache=cache)
        fell_back = fell_back or safe.fell_back
        if safe.result is not None:
            print(safe.result.describe())
        else:
            print(safe.describe())
        if args.lenient and safe.result is not None and safe.diagnostics:
            print(safe.diagnostics.summary())
        if args.show_nest:
            nests = lower(stage, safe.schedule)
            print(print_nest(nests[-1]))
        if args.halide:
            from repro.ir.halide_out import emit_halide

            print(emit_halide(safe.schedule))
        print()
    return EXIT_FALLBACK if fell_back else EXIT_OK


def cmd_compare(args) -> int:
    arch = _resolve_platform(args.platform)
    machine = Machine(arch, line_budget=args.budget)
    times = {}
    fell_back = False

    def fresh():
        return _resolve_case(args)

    def proposed_schedules(funcs, allow_nti):
        nonlocal fell_back
        policy = _policy(args, allow_nti=allow_nti)
        out = {}
        for f in funcs:
            safe = safe_optimize(f, arch, policy)
            fell_back = fell_back or safe.fell_back
            out[f] = safe.schedule
        return out

    case = fresh()
    times["proposed"] = machine.time_pipeline(
        case.pipeline, proposed_schedules(case.funcs, allow_nti=False)
    )
    case = fresh()
    times["proposed+NTI"] = machine.time_pipeline(
        case.pipeline, proposed_schedules(case.funcs, allow_nti=True)
    )
    case = fresh()
    times["auto-scheduler"] = machine.time_pipeline(
        case.pipeline, {f: autoschedule(f, arch).schedule for f in case.funcs}
    )
    case = fresh()
    times["baseline"] = machine.time_pipeline(
        case.pipeline, {f: baseline_schedule(f, arch) for f in case.funcs}
    )
    if args.autotune:
        case = fresh()
        tuner = Autotuner(machine, evaluations=args.autotune, seed=0)
        times[f"autotuner({args.autotune})"] = machine.time_pipeline(
            case.pipeline, {f: tuner.tune(f).schedule for f in case.funcs}
        )
    fastest = min(times.values())
    print(f"{case.name} on {arch.name}:")
    for name, ms in sorted(times.items(), key=lambda kv: kv[1]):
        print(f"  {name:22s} {ms:10.2f} ms   rel {fastest / ms:4.2f}")
    return EXIT_FALLBACK if fell_back else EXIT_OK


def cmd_sweep(args) -> int:
    """Forward to the sweep-driven experiments entry point."""
    from repro.core.parallel import resolve_jobs
    from repro.experiments.__main__ import main as experiments_main

    try:
        jobs = resolve_jobs(args.jobs)
    except ValueError as exc:
        raise SystemExit(f"invalid options: {exc}") from None
    argv = []
    if args.fast:
        argv.append("--fast")
    if args.fresh:
        argv.append("--fresh")
    if jobs != 1:
        argv.extend(["--jobs", str(jobs)])
    if args.timeout_s is not None:
        argv.extend(["--timeout-s", str(args.timeout_s)])
    if args.journal is not None:
        argv.extend(["--journal", args.journal])
    if args.trace is not None:
        argv.extend(["--trace", args.trace])
    if args.schedule_cache is not None:
        argv.extend(["--schedule-cache", args.schedule_cache])
    return experiments_main(argv)


def cmd_trace(args) -> int:
    """Summarize (or schema-validate) a recorded JSONL event log."""
    events, problems = read_trace(args.path)
    if args.validate:
        issues = problems + validate_trace(events)
        if issues:
            for issue in issues:
                print(f"invalid: {issue}", file=sys.stderr)
            print(
                f"{args.path}: {len(issues)} schema violation(s) in "
                f"{len(events)} records",
                file=sys.stderr,
            )
            return EXIT_HARD
        print(f"{args.path}: {len(events)} records, schema OK")
        return EXIT_OK
    if not events and problems:
        for problem in problems:
            print(f"warning: {problem}", file=sys.stderr)
        print(f"error: {args.path}: no readable trace records", file=sys.stderr)
        return EXIT_HARD
    for problem in problems:
        print(f"warning: {problem}", file=sys.stderr)
    print(render_summary(events))
    return EXIT_OK


def cmd_serve(args) -> int:
    """Run the long-lived optimization service until SIGTERM/SIGINT."""
    from repro.obs import current_tracer
    from repro.serve import OptimizeServer

    try:
        server = OptimizeServer(
            host=args.host,
            port=args.port,
            workers=args.workers,
            queue_limit=args.queue_limit,
            batch_window_ms=args.batch_window_ms,
            batch_max=args.batch_max,
            cache_path=args.schedule_cache,
            tracer=current_tracer(),
            retry_after_s=args.retry_after_s,
        )
    except ValueError as exc:
        # e.g. --queue-limit 0, REPRO_SERVE_FAULT typos: friendly, no
        # traceback, hard-failure exit.
        raise SystemExit(f"invalid options: {exc}") from None
    try:
        return server.run()
    except OSError as exc:
        return _report_bind_error(args.host, args.port, exc, what="server")


def cmd_submit(args) -> int:
    """Submit one optimization request to a running server."""
    from repro.serve.client import ServeClient
    from repro.util import ServeOverloaded

    client = ServeClient(
        args.host,
        args.port,
        timeout_s=args.timeout_s,
        retries=args.retries,
    )
    params = dict(p for group in (args.params or []) for p in group)
    try:
        result = client.optimize(
            args.benchmark,
            args.platform,
            fast=args.fast,
            jobs=args.jobs,
            deadline_ms=args.deadline_ms,
            spec=args.spec,
            dims=args.dims,
            dtypes=args.dtypes,
            params=params or None,
            use_nti=not args.no_nti,
        )
    except ServeOverloaded as exc:
        print(f"error: {exc}", file=sys.stderr)
        print(
            f"hint: the server shed this request; retry after "
            f"{exc.retry_after_s:g}s or raise its --queue-limit",
            file=sys.stderr,
        )
        return EXIT_UNAVAILABLE
    except ConnectionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        print(
            f"hint: start a server with `python -m repro serve "
            f"--port {args.port}`",
            file=sys.stderr,
        )
        return EXIT_UNAVAILABLE
    if args.json:
        import json as _json

        print(_json.dumps(result, indent=2, sort_keys=True))
        return EXIT_OK
    print(
        f"{result['benchmark']} on {result['platform']}: "
        f"served_by={result['served_by']} "
        f"({result['elapsed_ms']:.1f} ms server-side)"
    )
    for entry, source in zip(result["schedules"], result["stage_sources"]):
        directives = entry["schedule"].get("directives", [])
        print(
            f"  stage {entry['stage']}: {len(directives)} directive(s) "
            f"[{source}]"
        )
    return EXIT_OK


def cmd_fleet(args) -> int:
    """Run a sharded serve fleet, or talk to a running one."""
    from repro.serve.client import ServeClient

    if args.action == "status":
        client = ServeClient(args.host, args.port, timeout_s=10.0, retries=0)
        try:
            _status, body = client.get("/fleet/status")
        except ConnectionError as exc:
            print(f"error: {exc}", file=sys.stderr)
            print(
                f"hint: start a fleet with `python -m repro fleet "
                f"--port {args.port}`",
                file=sys.stderr,
            )
            return EXIT_UNAVAILABLE
        workers = body.get("workers", [])
        print(f"fleet at http://{args.host}:{args.port}:")
        for worker in workers:
            print(
                f"  shard {worker['shard']}: {worker['state']:11s} "
                f"port={worker['port']} restarts={worker['restarts']} "
                f"pid={worker['pid']} breaker={worker.get('breaker', 'closed')}"
            )
        # Quarantined shards are a different incident class from down
        # ones: the supervisor restarts down shards on its own, but a
        # flap-quarantined shard stays out until an operator rolls the
        # fleet — list them separately so the distinction is loud.
        quarantined = [w for w in workers if w.get("state") == "quarantined"]
        down = [
            w for w in workers if w.get("state") not in ("up", "quarantined")
        ]
        if quarantined:
            print(
                "quarantined shards (flapping; excluded from restarts — "
                "run `repro fleet restart` once the cause is fixed):"
            )
            for worker in quarantined:
                print(
                    f"  shard {worker['shard']}: "
                    f"restarts={worker['restarts']}"
                )
        if down:
            print("down shards (the supervisor is restarting them):")
            for worker in down:
                print(f"  shard {worker['shard']}: {worker['state']}")
        cache = body.get("cache")
        cache_bad = False
        if cache is not None:
            corrupt = sum(
                shard.get("corrupt_lines", 0)
                for shard in cache.get("shards", {}).values()
            )
            if cache.get("consistent") and not corrupt:
                print(
                    f"cache: consistent across shards "
                    f"({cache.get('shared_keys', 0)} shared key(s))"
                )
            else:
                cache_bad = True
                print(
                    f"cache: INCONSISTENT — mismatched keys: "
                    f"{cache.get('mismatched_keys', [])}, corrupt lines "
                    f"on disk: {corrupt}"
                )
        degraded = any(w.get("state") != "up" for w in workers) or cache_bad
        return EXIT_FALLBACK if degraded else EXIT_OK

    if args.action == "restart":
        # Rolling drain/restart: one shard out at a time, zero admitted
        # jobs lost; the call returns once every shard is back up.
        client = ServeClient(args.host, args.port, timeout_s=600.0, retries=0)
        try:
            status, body = client.post("/fleet/restart")
        except ConnectionError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_UNAVAILABLE
        if status != 200:
            print(
                f"error: rolling restart failed (HTTP {status}): "
                f"{body.get('error', body)}",
                file=sys.stderr,
            )
            return EXIT_HARD
        print(f"rolled {body.get('rolled', 0)} worker(s), all back up")
        return EXIT_OK

    # action == "run": boot the workers, then route until SIGTERM/SIGINT.
    from repro.fleet import FleetRouter, FleetSupervisor
    from repro.obs import current_tracer

    try:
        supervisor = FleetSupervisor(
            workers=args.workers,
            host=args.host,
            cache_path=args.schedule_cache,
            queue_limit=args.queue_limit,
            probe_interval_s=args.probe_interval_s,
            tracer=current_tracer(),
        )
        router = FleetRouter(
            supervisor,
            host=args.host,
            port=args.port,
            tracer=current_tracer(),
            retry_after_s=args.retry_after_s,
        )
    except ValueError as exc:
        raise SystemExit(f"invalid options: {exc}") from None
    try:
        supervisor.start()
    except RuntimeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_HARD
    try:
        return router.run()
    except OSError as exc:
        supervisor.stop()
        return _report_bind_error(args.host, args.port, exc, what="fleet")


def cmd_chaos(args) -> int:
    """Run a seeded chaos scenario against a live in-process fleet."""
    import json as _json

    from repro.chaos import SCENARIOS, run_scenario, scenario_names
    from repro.obs import current_tracer

    if args.action == "list":
        for name in scenario_names():
            print(f"{name:26s} {SCENARIOS[name].description}")
        return EXIT_OK

    if not args.scenario:
        print(
            "error: chaos run needs --scenario (see `repro chaos list`)",
            file=sys.stderr,
        )
        return EXIT_USAGE

    def one_run():
        return run_scenario(
            args.scenario,
            seed=args.seed,
            requests=args.requests,
            tracer=current_tracer(),
        )

    try:
        result = one_run()
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    mismatch = False
    if args.check:
        # The harness's own reproducibility is part of the contract:
        # the same (scenario, seed) must produce a bit-identical
        # invariant report.
        repeat = one_run()
        mismatch = _json.dumps(result.report, sort_keys=True) != _json.dumps(
            repeat.report, sort_keys=True
        )

    if args.json:
        document = {"report": result.report,
                    "observations": result.observations}
        if args.check:
            document["check"] = "mismatch" if mismatch else "identical"
        print(_json.dumps(document, indent=2, sort_keys=True))
    else:
        report = result.report
        print(
            f"chaos {report['scenario']} seed={report['seed']} "
            f"({report['requests']} requests, {report['workers']} workers)"
        )
        for invariant in report["invariants"]:
            mark = "ok " if invariant["ok"] else "FAIL"
            print(f"  [{mark}] {invariant['name']}: {invariant['detail']}")
        tally = result.observations.get("outcomes", {})
        print(
            f"  outcomes: {tally.get('ok', 0)} ok, "
            f"{tally.get('shed', 0)} shed, {tally.get('failed', 0)} failed; "
            f"{result.observations.get('failover_served', 0)} served by "
            f"failover"
        )
        if args.check:
            print(
                "  determinism: reports "
                + ("DIVERGED across repeat runs" if mismatch
                   else "bit-identical across repeat runs")
            )
    if mismatch:
        print(
            "error: same seed produced different invariant reports",
            file=sys.stderr,
        )
        return EXIT_HARD
    return EXIT_OK if result.ok else EXIT_HARD


def cmd_loadgen(args) -> int:
    """Drive a seeded open-loop load; write/gate BENCH_serve.json."""
    import json as _json

    from repro.loadgen import (
        check_serve_regression,
        run_loadgen,
        write_payload,
    )

    loadgen_kwargs = dict(
        requests=args.requests,
        rate_rps=args.rate_rps,
        hot_fraction=args.hot_fraction,
        seed=args.seed,
        platform=args.platform,
        timeout_s=args.timeout_s,
        corpus_family=args.corpus_family,
    )
    try:
        if args.fleet:
            # Self-hosted mode: boot a whole fleet, measure it, tear it
            # down — what the CI bench-serve job runs as one command.
            import os
            import tempfile

            from repro.fleet.testing import FleetThread

            with tempfile.TemporaryDirectory() as tmp:
                with FleetThread(
                    workers=args.fleet,
                    cache_path=os.path.join(tmp, "cache.jsonl"),
                    queue_limit=32,
                ) as fleet:
                    payload = run_loadgen(port=fleet.port, **loadgen_kwargs)
                    payload["target"] = {
                        "mode": "fleet",
                        "workers": args.fleet,
                    }
                    payload["fleet_counters"] = fleet.router.metrics_snapshot()[
                        "counters"
                    ]
        else:
            payload = run_loadgen(
                host=args.host, port=args.port, **loadgen_kwargs
            )
            payload["target"] = {
                "mode": "external",
                "host": args.host,
                "port": args.port,
            }
    except ValueError as exc:
        raise SystemExit(f"invalid options: {exc}") from None
    except ConnectionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_UNAVAILABLE

    latency = payload["latency_ms"]
    dup = payload["duplicates"]
    print(
        f"loadgen seed={payload['seed']}: {payload['requests']} requests "
        f"@ {payload['rate_rps']:g} rps (hot {payload['hot_fraction']:.0%}) "
        f"in {payload['wall_ms']:.0f} ms"
    )
    print(
        f"  latency p50 {latency['p50_ms']:g} ms | p90 {latency['p90_ms']:g}"
        f" ms | p99 {latency['p99_ms']:g} ms | max {latency['max_ms']:g} ms"
    )
    print(
        f"  served_by {payload['served_by']} | errors {payload['errors']} | "
        f"identical {payload['responses_identical']} | warm duplicates "
        f"{dup['warm']}/{dup['total']}"
    )
    if args.out:
        write_payload(payload, args.out)
        print(f"  wrote {args.out}")
    if args.check:
        try:
            with open(args.baseline, "r", encoding="utf-8") as handle:
                baseline = _json.load(handle)
        except (OSError, _json.JSONDecodeError) as exc:
            print(
                f"loadgen --check: cannot read baseline: {exc}",
                file=sys.stderr,
            )
            return EXIT_HARD
        failures = check_serve_regression(
            payload, baseline, tolerance=args.tolerance
        )
        if failures:
            for failure in failures:
                print(f"loadgen --check FAIL: {failure}", file=sys.stderr)
            return EXIT_HARD
        print(f"  check vs {args.baseline}: OK (±{args.tolerance:.0%})")
    return EXIT_OK


def cmd_tune(args) -> int:
    """Fleet-scale autotuning: plan a grid, fan it out, stream results."""
    import json as _json

    from repro.options import CACHE_KEYS
    from repro.tune import (
        TUNE_REPORT_FORMAT,
        build_tune_request,
        validate_tune_report,
    )

    kernels = None
    if args.kernels:
        kernels = [k.strip() for k in args.kernels.split(",") if k.strip()]
    families = args.families or None
    grid = [{}]
    for name in args.vary or []:
        if name not in CACHE_KEYS and name != "multistride":
            raise SystemExit(
                f"--vary {name!r}: not an option switch; known: "
                f"{', '.join(CACHE_KEYS)}, multistride"
            )
        if any(name in overlay for overlay in grid):
            continue  # --vary use_nti --vary use_nti
        # Boolean switches sweep {off, on}; multistride sweeps the
        # disabled default against the three-way classifier.
        values = ("off", "auto") if name == "multistride" else (False, True)
        grid = [
            dict(overlay, **{name: value})
            for overlay in grid
            for value in values
        ]
    try:
        request = build_tune_request(
            kernels=kernels,
            families=families,
            platforms=args.platforms or ["i7-5930k"],
            grid=grid,
            fast=args.fast,
            deadline_ms=args.deadline_ms,
        )
    except ValueError as exc:
        raise SystemExit(f"invalid tune request: {exc}") from None

    def show(record) -> None:
        if args.json:
            return
        ms = record.get("ms")
        if ms:
            print(
                f"  {record['key']}: {record['status']} "
                f"{ms:.3f} ms (x{record['speedup']:.2f})"
            )
        else:
            print(
                f"  {record['key']}: {record['status']}"
                + (f" — {record['error']}" if record.get("error") else "")
            )

    def stream_once(host, port):
        """POST /v1/tune and consume the NDJSON stream."""
        from repro.serve.client import ServeClient

        client = ServeClient(host, port, timeout_s=args.timeout_s, retries=0)
        report_doc = None
        for record in client.tune(request):
            if record.get("format") == TUNE_REPORT_FORMAT:
                report_doc = record
            elif record.get("kind") == "error":
                raise ReproError(f"tune job failed: {record.get('error')}")
            else:
                show(record)
        if report_doc is None:
            raise ConnectionError("tune stream ended without a report")
        return report_doc

    def run_local(host, port):
        """Client-side runner mode: journal here, submit cells there."""
        from repro.sweep import Journal
        from repro.tune import TuneRunner, plan_tune_cells, tune_id

        cells = plan_tune_cells(request)
        runner = TuneRunner(
            Journal(args.journal),
            host=host,
            port=port,
            jobs=args.jobs,
            timeout_s=args.timeout_s,
            deadline_ms=args.deadline_ms,
        )
        report = runner.run(
            cells, tune_id=tune_id(request), on_record=show
        )
        if args.schedule_cache:
            from repro.cache import ScheduleCache

            stores = report.install_winners(
                ScheduleCache(args.schedule_cache)
            )
            if not args.json:
                print(
                    f"  installed {stores} winning schedule(s) into "
                    f"{args.schedule_cache}"
                )
        return report.document()

    def run_once(host, port):
        return run_local(host, port) if args.journal else stream_once(
            host, port
        )

    repeat = None
    try:
        if args.fleet:
            # Self-hosted mode: boot a whole fleet, tune it, tear it
            # down — what the CI tune-smoke job runs as one command.
            import os
            import tempfile

            from repro.fleet.testing import FleetThread

            # The shard caches — and therefore the server-side tune
            # journal, which defaults to the cache's directory — live
            # in the tempdir, so --check's second POST resumes from it.
            with tempfile.TemporaryDirectory() as tmp:
                with FleetThread(
                    workers=args.fleet,
                    cache_path=os.path.join(tmp, "cache.jsonl"),
                    queue_limit=32,
                ) as fleet:
                    document = run_once("127.0.0.1", fleet.port)
                    if args.check:
                        repeat = run_once("127.0.0.1", fleet.port)
        else:
            document = run_once(args.host, args.port)
            if args.check:
                repeat = run_once(args.host, args.port)
    except ValueError as exc:
        raise SystemExit(f"invalid options: {exc}") from None
    except ConnectionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        print(
            f"hint: start a fleet with `python -m repro fleet --port "
            f"{args.port}`, or pass --fleet N to self-host one",
            file=sys.stderr,
        )
        return EXIT_UNAVAILABLE

    problems = validate_tune_report(document)
    if problems:
        for problem in problems:
            print(f"invalid report: {problem}", file=sys.stderr)
        return EXIT_HARD
    mismatch = args.check and _json.dumps(
        document, sort_keys=True
    ) != _json.dumps(repeat, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            _json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.json:
        print(_json.dumps(document, indent=2, sort_keys=True))
    else:
        print(
            f"tune {document['tune_id']}: {document['cells']} cells: "
            f"{document['ok']} ok, {document['quarantined']} quarantined"
        )
        for slot in sorted(document["winners"]):
            entry = document["winners"][slot]
            enabled = ", ".join(
                sorted(k for k, v in entry["options"].items() if v)
            )
            print(
                f"  {slot}: {entry['ms']:.3f} ms (x{entry['speedup']:.2f})"
                f" [{enabled or 'all switches off'}]"
            )
        if args.out:
            print(f"  wrote {args.out}")
        if args.check:
            print(
                "  resume check: reports "
                + ("DIVERGED across runs" if mismatch
                   else "bit-identical across runs")
            )
    if mismatch:
        print(
            "error: the resumed tune produced a different report",
            file=sys.stderr,
        )
        return EXIT_HARD
    return EXIT_UNAVAILABLE if document["quarantined"] else EXIT_OK


def cmd_codegen(args) -> int:
    arch = _resolve_platform(args.platform)
    case = _resolve_case(args)
    policy = _policy(args, allow_nti=not args.no_nti)
    fell_back = False
    nests = []
    for stage in case.pipeline:
        safe = safe_optimize(stage, arch, policy)
        fell_back = fell_back or safe.fell_back
        nests.extend(lower(stage, safe.schedule))
    source = codegen(nests, function_name=case.name.replace("-", "_"))
    if args.output:
        try:
            with open(args.output, "w") as handle:
                handle.write(source)
        except OSError as exc:
            raise SystemExit(
                f"cannot write {args.output!r}: {exc.strerror or exc}"
            ) from None
        print(f"wrote {args.output}")
    else:
        print(source)
    return EXIT_FALLBACK if fell_back else EXIT_OK


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Prefetcher-aware loop optimization (CGO'18 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks and platforms")

    def spec_flags(p):
        p.add_argument("--spec", default=None, metavar="SPEC",
                       help="kernel spec string instead of a benchmark "
                            "name, e.g. 'C[i,j] += A[i,k] * B[k,j]' "
                            "(see docs/API.md, \"Kernel spec language\")")
        p.add_argument("--dims", type=_dims_arg, default=None,
                       metavar="N=EXT,...",
                       help="loop extents for --spec, e.g. "
                            "i=512,j=512,k=512")
        p.add_argument("--dtypes", type=_dtypes_arg, default=None,
                       metavar="T=DT,...",
                       help="per-tensor dtypes for --spec "
                            "(default float32), e.g. C=float64")
        p.add_argument("--param", action="append", type=_param_arg,
                       default=None, dest="params", metavar="NAME=VALUE",
                       help="scalar constant for --spec (repeatable), "
                            "e.g. --param a=0.5")

    def common(p):
        p.add_argument("benchmark", nargs="?", default=None)
        spec_flags(p)
        p.add_argument("--platform", default="i7-5930k",
                       help="i7-5930k | i7-6700 | arm-a15")
        p.add_argument("--fast", action="store_true",
                       help="scaled-down problem size")
        p.add_argument("--no-nti", action="store_true",
                       help="disable non-temporal stores")
        p.add_argument("--deadline-ms", type=float, default=None,
                       metavar="MS",
                       help="per-stage optimizer time budget")
        p.add_argument("--jobs", type=_jobs_arg, default=1, metavar="N",
                       help="worker processes for candidate evaluation "
                            "('auto' or 0 = one per core, capped; results "
                            "are bit-identical to --jobs 1)")
        p.add_argument("--trace", default=None, metavar="PATH",
                       help="write a repro-trace-v1 JSONL event log")
        mode = p.add_mutually_exclusive_group()
        mode.add_argument("--strict", action="store_true",
                          help="fail hard on any optimizer error (default)")
        mode.add_argument("--lenient", action="store_true",
                          help="degrade through the fallback chain instead "
                               "of failing; exit code 3 when degraded")

    p_opt = sub.add_parser("optimize", help="run the optimization flow")
    common(p_opt)
    p_opt.add_argument("--schedule-cache", default=None, metavar="PATH",
                       dest="schedule_cache",
                       help="persistent schedule cache (JSONL) consulted "
                            "before searching; hits skip the search")
    p_opt.add_argument("--show-nest", action="store_true",
                       help="print the lowered pseudo-C nest")
    p_opt.add_argument("--halide", action="store_true",
                       help="print the schedule as Halide C++ code")

    p_cmp = sub.add_parser("compare", help="simulate all techniques")
    common(p_cmp)
    p_cmp.add_argument("--budget", type=int, default=40_000,
                       help="trace line budget per nest")
    p_cmp.add_argument("--autotune", type=int, default=0, metavar="EVALS",
                       help="also run the autotuner with this many evals")

    p_gen = sub.add_parser("codegen", help="emit C for the best schedule")
    common(p_gen)
    p_gen.add_argument("-o", "--output", help="write to a file")

    p_sweep = sub.add_parser(
        "sweep",
        help="regenerate all tables/figures (crash-safe, resumable)",
    )
    p_sweep.add_argument("--fast", action="store_true",
                         help="scaled-down problem sizes")
    p_sweep.add_argument("--jobs", type=_jobs_arg, default=1, metavar="N",
                         help="parallel worker subprocesses ('auto' or 0 "
                              "= one per core, capped)")
    p_sweep.add_argument("--fresh", action="store_true",
                         help="discard the journal and start over")
    p_sweep.add_argument("--timeout-s", type=float, default=None,
                         metavar="S", dest="timeout_s",
                         help="hard per-cell timeout")
    p_sweep.add_argument("--journal", default=None, metavar="PATH",
                         help="journal path (default: .repro-sweep.jsonl)")
    p_sweep.add_argument("--trace", default=None, metavar="PATH",
                         help="write a repro-trace-v1 JSONL event log")
    p_sweep.add_argument("--schedule-cache", default=None, metavar="PATH",
                         dest="schedule_cache",
                         help="persistent cross-run schedule cache (JSONL) "
                              "shared by the sweep workers")

    p_trace = sub.add_parser(
        "trace",
        help="summarize or validate a recorded JSONL event log",
    )
    p_trace.add_argument("path", help="trace file written by --trace")
    p_trace.add_argument("--validate", action="store_true",
                         help="schema-check only; exit 4 on any violation")

    p_serve = sub.add_parser(
        "serve",
        help="run the optimization service (repro-serve-v1 over HTTP)",
    )
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8377,
                         help="bind port (default: 8377; 0 = pick free)")
    p_serve.add_argument("--workers", type=_jobs_arg, default=1,
                         metavar="N",
                         help="worker-pool threads executing requests "
                              "('auto' or 0 = one per core, capped)")
    p_serve.add_argument("--queue-limit", type=int, default=16,
                         dest="queue_limit", metavar="N",
                         help="admitted-job bound; beyond it requests are "
                              "shed with 429 + Retry-After")
    p_serve.add_argument("--batch-window-ms", type=float, default=2.0,
                         dest="batch_window_ms", metavar="MS",
                         help="micro-batch dispatch window (0 disables)")
    p_serve.add_argument("--batch-max", type=int, default=8,
                         dest="batch_max", metavar="N",
                         help="max jobs dispatched per batch window")
    p_serve.add_argument("--retry-after-s", type=float, default=1.0,
                         dest="retry_after_s", metavar="S",
                         help="backoff hint on shed responses")
    p_serve.add_argument("--schedule-cache", default=None, metavar="PATH",
                         dest="schedule_cache",
                         help="persistent schedule cache (JSONL) consulted "
                              "before every search")
    p_serve.add_argument("--trace", default=None, metavar="PATH",
                         help="write a repro-trace-v1 JSONL event log "
                              "(serve.* lifecycle events)")

    p_fleet = sub.add_parser(
        "fleet",
        help="run a sharded serve fleet (consistent-hash router + N "
             "worker processes), or query/roll a running one",
    )
    p_fleet.add_argument("action", nargs="?", default="run",
                         choices=("run", "status", "restart"),
                         help="run (default): boot router+workers; "
                              "status: show shard states; restart: "
                              "rolling drain/restart of every shard")
    p_fleet.add_argument("--host", default="127.0.0.1",
                         help="router bind/target address")
    p_fleet.add_argument("--port", type=int, default=8378,
                         help="router port (default: 8378; 0 = pick free)")
    p_fleet.add_argument("--workers", type=int, default=2, metavar="N",
                         help="worker shard processes (default: 2)")
    p_fleet.add_argument("--queue-limit", type=int, default=16,
                         dest="queue_limit", metavar="N",
                         help="per-worker admitted-job bound")
    p_fleet.add_argument("--schedule-cache", default=None, metavar="PATH",
                         dest="schedule_cache",
                         help="base schedule-cache path; each shard gets "
                              "its own -shardN spelling")
    p_fleet.add_argument("--probe-interval-s", type=float, default=0.25,
                         dest="probe_interval_s", metavar="S",
                         help="health-probe cadence")
    p_fleet.add_argument("--retry-after-s", type=float, default=1.0,
                         dest="retry_after_s", metavar="S",
                         help="backoff hint when no shard can serve")
    p_fleet.add_argument("--trace", default=None, metavar="PATH",
                         help="write a repro-trace-v1 JSONL event log "
                              "(fleet.* lifecycle events)")

    p_chaos = sub.add_parser(
        "chaos",
        help="seeded chaos harness: drive a live fleet through scripted "
             "faults and assert global invariants",
    )
    p_chaos.add_argument("action", nargs="?", default="run",
                         choices=("run", "list"),
                         help="run: execute one scenario; list: show the "
                              "scenario catalog")
    p_chaos.add_argument("--scenario", default=None, metavar="NAME",
                         help="scenario to run (see `repro chaos list`)")
    p_chaos.add_argument("--seed", type=int, default=0,
                         help="fault/mix/backoff seed; same seed, same "
                              "invariant report (default: 0)")
    p_chaos.add_argument("--requests", type=int, default=None, metavar="N",
                         help="override the scenario's request count")
    p_chaos.add_argument("--json", action="store_true",
                         help="print the report + observations as JSON")
    p_chaos.add_argument("--check", action="store_true",
                         help="run the scenario twice and require "
                              "bit-identical invariant reports; exit 4 "
                              "on divergence or any failed invariant")

    p_load = sub.add_parser(
        "loadgen",
        help="drive a seeded open-loop load against a server or fleet; "
             "write/gate the BENCH_serve.json baseline",
    )
    p_load.add_argument("--host", default="127.0.0.1",
                        help="target address (external mode)")
    p_load.add_argument("--port", type=int, default=8377,
                        help="target port (external mode)")
    p_load.add_argument("--fleet", type=int, default=0, metavar="N",
                        help="self-host: boot an N-worker fleet, measure "
                             "it, tear it down (ignores --host/--port)")
    p_load.add_argument("--requests", type=int, default=20, metavar="N",
                        help="how many requests to fire (default: 20)")
    p_load.add_argument("--rate-rps", type=float, default=2.0,
                        dest="rate_rps", metavar="R",
                        help="open-loop arrival rate (default: 2/s)")
    p_load.add_argument("--hot-fraction", type=float, default=0.5,
                        dest="hot_fraction", metavar="F",
                        help="fraction of requests re-asking the hot "
                             "identity (default: 0.5)")
    p_load.add_argument("--seed", type=int, default=0,
                        help="arrival/mix/backoff seed (default: 0)")
    p_load.add_argument("--platform", default="i7-5930k",
                        help="platform every request targets")
    p_load.add_argument("--corpus-family", default=None, metavar="NAME",
                        dest="corpus_family",
                        help="draw the hot/cold identity mix from this "
                             "spec-corpus family (polybench | dl | micro) "
                             "instead of the built-in benchmark pool")
    p_load.add_argument("--timeout-s", type=float, default=120.0,
                        dest="timeout_s", metavar="S",
                        help="per-request socket timeout")
    p_load.add_argument("--out", default=None, metavar="PATH",
                        help="write the JSON payload to PATH")
    p_load.add_argument("--check", action="store_true",
                        help="compare against --baseline and exit 4 on "
                             "regression")
    p_load.add_argument("--baseline", default="BENCH_serve.json",
                        metavar="PATH",
                        help="baseline payload for --check")
    p_load.add_argument("--tolerance", type=float, default=0.2,
                        metavar="FRAC",
                        help="allowed one-sided regression for --check")

    p_tune = sub.add_parser(
        "tune",
        help="fleet-scale autotuning: corpus kernels x platforms x an "
             "options grid, journaled and resumable (POST /v1/tune)",
    )
    p_tune.add_argument("--kernels", default=None, metavar="A,B",
                        help="comma-separated corpus kernel names, e.g. "
                             "matmul,mxv (see docs/API.md, \"Corpus\")")
    p_tune.add_argument("--family", action="append", default=None,
                        dest="families", metavar="NAME",
                        help="select a whole corpus family instead "
                             "(repeatable): polybench | dl | micro")
    p_tune.add_argument("--platform", action="append", default=None,
                        dest="platforms", metavar="NAME",
                        help="target platform (repeatable; default: "
                             "i7-5930k)")
    p_tune.add_argument("--vary", action="append", default=None,
                        metavar="OPT",
                        help="cross both values of an option switch into "
                             "the grid (repeatable), e.g. --vary use_nti; "
                             "--vary multistride sweeps off vs auto")
    p_tune.add_argument("--fast", action="store_true",
                        help="scaled-down problem sizes")
    p_tune.add_argument("--deadline-ms", type=float, default=None,
                        metavar="MS", dest="deadline_ms",
                        help="per-cell server-side budget")
    p_tune.add_argument("--fleet", type=int, default=0, metavar="N",
                        help="self-host: boot an N-worker fleet, tune it, "
                             "tear it down (ignores --host/--port)")
    p_tune.add_argument("--host", default="127.0.0.1",
                        help="fleet router address (external mode)")
    p_tune.add_argument("--port", type=int, default=8378,
                        help="fleet router port (default: 8378)")
    p_tune.add_argument("--journal", default=None, metavar="PATH",
                        help="run the job client-side against --host/"
                             "--port, journaling to PATH (instead of "
                             "POSTing /v1/tune)")
    p_tune.add_argument("--jobs", type=int, default=2, metavar="N",
                        help="concurrent in-flight cells (client-side "
                             "mode; default: 2)")
    p_tune.add_argument("--schedule-cache", default=None, metavar="PATH",
                        dest="schedule_cache",
                        help="also install the winning schedules into "
                             "this cache (client-side mode)")
    p_tune.add_argument("--timeout-s", type=float, default=120.0,
                        dest="timeout_s", metavar="S",
                        help="socket timeout between stream records")
    p_tune.add_argument("--check", action="store_true",
                        help="run the tune twice (the second run resumes "
                             "from the journal) and require bit-identical "
                             "reports; exit 4 on divergence")
    p_tune.add_argument("--out", default=None, metavar="PATH",
                        help="write the final report JSON to PATH")
    p_tune.add_argument("--json", action="store_true",
                        help="print the final report as JSON")

    p_sub = sub.add_parser(
        "submit",
        help="submit one optimization request to a running server",
    )
    p_sub.add_argument("benchmark", nargs="?", default=None)
    spec_flags(p_sub)
    p_sub.add_argument("--host", default="127.0.0.1",
                       help="server address (default: 127.0.0.1)")
    p_sub.add_argument("--port", type=int, default=8377,
                       help="server port (default: 8377)")
    p_sub.add_argument("--platform", default="i7-5930k",
                       help="i7-5930k | i7-6700 | arm-a15")
    p_sub.add_argument("--fast", action="store_true",
                       help="scaled-down problem size")
    p_sub.add_argument("--no-nti", action="store_true",
                       help="disable non-temporal stores")
    p_sub.add_argument("--jobs", type=_jobs_arg, default=1, metavar="N",
                       help="server-side search parallelism for this "
                            "request ('auto' = server decides per core)")
    p_sub.add_argument("--deadline-ms", type=float, default=None,
                       metavar="MS", dest="deadline_ms",
                       help="server-side budget; expired requests fail "
                            "with HTTP 504")
    p_sub.add_argument("--retries", type=int, default=3,
                       help="re-submissions after a shed (429/503) "
                            "response")
    p_sub.add_argument("--timeout-s", type=float, default=120.0,
                       dest="timeout_s", metavar="S",
                       help="socket timeout for one round-trip")
    p_sub.add_argument("--json", action="store_true",
                       help="print the full result payload as JSON")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "list": cmd_list,
        "optimize": cmd_optimize,
        "compare": cmd_compare,
        "codegen": cmd_codegen,
        "sweep": cmd_sweep,
        "trace": cmd_trace,
        "serve": cmd_serve,
        "submit": cmd_submit,
        "fleet": cmd_fleet,
        "chaos": cmd_chaos,
        "loadgen": cmd_loadgen,
        "tune": cmd_tune,
    }[args.command]
    try:
        with contextlib.ExitStack() as stack:
            # `sweep` forwards --trace to the experiments CLI, which owns
            # its own tracer; everything else traces in-process here.
            trace_path = getattr(args, "trace", None)
            if args.command != "sweep" and trace_path:
                try:
                    tracer = JsonlTracer(trace_path)
                except OSError as exc:
                    raise SystemExit(
                        f"cannot write {trace_path!r}: {exc.strerror or exc}"
                    ) from None
                stack.enter_context(tracer)
                stack.enter_context(activate_tracer(tracer))
            return handler(args)
    except ReproError as exc:
        # Hard failure: a clean one-line report, never a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_HARD


if __name__ == "__main__":
    raise SystemExit(main())
