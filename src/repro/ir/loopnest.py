"""The lowered loop-nest IR.

Lowering a ``(Func, Schedule)`` pair produces one :class:`LoopNest` per
definition.  A nest is *perfect* — a flat list of loops (outermost first)
around exactly one :class:`Stmt` — which is all the paper's model and our
trace generator need (Halide lowers scheduled stages to the same shape).

The :class:`Stmt` carries everything the back ends consume:

* the store target and right-hand side expression,
* the index-reconstruction trees mapping original variables to the
  scheduled loop counters (see :mod:`repro.ir.schedule`),
* guard bounds for imperfectly split variables,
* the non-temporal-store flag introduced by the paper's new directive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ir.expr import Access, Expr
from repro.ir.func import Definition, Func
from repro.ir.schedule import IndexNode, LoopKind, LoopSpec


@dataclass
class Stmt:
    """The single innermost statement of a lowered nest."""

    store: Access
    rhs: Expr
    index_trees: Dict[str, IndexNode]
    guards: Dict[str, int] = field(default_factory=dict)
    nontemporal: bool = False
    #: (stream-id loop name, stream count) pairs for loops created by the
    #: ``multistride`` directive; empty for every other schedule.
    stream_loops: Tuple[Tuple[str, int], ...] = ()

    @property
    def reads(self) -> List[Access]:
        """All accesses read by the right-hand side (including
        self-references to the output)."""
        return list(self.rhs.accesses())

    @property
    def ops(self) -> int:
        """Arithmetic operation count per statement execution."""
        return self.rhs.count_ops()


@dataclass
class LoopNest:
    """A perfectly nested, lowered loop nest for one Func definition."""

    func: Func
    definition_index: int
    loops: Tuple[LoopSpec, ...]
    stmt: Stmt

    @property
    def definition(self) -> Definition:
        return self.func.definitions[self.definition_index]

    @property
    def name(self) -> str:
        suffix = f".update{self.definition_index - 1}" if self.definition_index else ""
        return f"{self.func.name}{suffix}"

    def loop(self, name: str) -> LoopSpec:
        """Find a loop level by name."""
        for spec in self.loops:
            if spec.name == name:
                return spec
        raise KeyError(f"nest {self.name} has no loop {name!r}")

    def loop_names(self) -> List[str]:
        return [l.name for l in self.loops]

    @property
    def depth(self) -> int:
        return len(self.loops)

    def total_iterations(self) -> int:
        """Product of all loop extents (statement executions, ignoring
        guards)."""
        n = 1
        for spec in self.loops:
            n *= spec.extent
        return n

    def guarded_iterations(self) -> int:
        """Statement executions once guards are honored: the product of
        the *original* variable bounds (loops may overshoot them after
        imperfect splits; the guards clip the overshoot)."""
        total = 1
        for bound in self._original_bounds().values():
            total *= bound
        return total

    def _original_bounds(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for var in self.definition.all_vars():
            out[var.name] = self.func.bound_of(var.name)
        return out

    def parallel_loops(self) -> List[LoopSpec]:
        return [l for l in self.loops if l.kind is LoopKind.PARALLEL]

    def vectorized_loops(self) -> List[LoopSpec]:
        return [l for l in self.loops if l.kind is LoopKind.VECTORIZED]

    def innermost(self) -> LoopSpec:
        if not self.loops:
            raise ValueError(f"nest {self.name} has no loops")
        return self.loops[-1]

    def __repr__(self) -> str:
        loops = " > ".join(f"{l.name}[{l.extent}]" for l in self.loops)
        return f"LoopNest({self.name}: {loops})"
