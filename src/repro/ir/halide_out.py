"""Emit schedules as Halide C++ scheduling code.

The paper's tool produces Halide schedules (its Listing 3 shows one for
matmul); this module renders a :class:`~repro.ir.schedule.Schedule` in the
same shape, so the reproduction's output can be pasted into a real Halide
program::

    C.update()
        .split(j, j_o, j_i, 512)
        .split(i, i_o, i_i, 32)
        .reorder(j_i, i_i, j_o, i_o)
        .vectorize(j_i, 8)
        .parallel(i_o)
        .store_nontemporal();   // the paper's new directive

Two deliberate translation choices:

* our recorded ``reorder`` directives already use Halide's innermost-first
  convention, so they pass through verbatim;
* ``Var``/``RVar`` declarations are emitted for every loop name a
  directive introduces, since Halide requires the objects to exist.
"""

from __future__ import annotations

from typing import List, Set

from repro.ir.schedule import Directive, Schedule


def _stage_expr(schedule: Schedule) -> str:
    """The C++ expression naming the scheduled stage."""
    func = schedule.func.name
    index = schedule.definition_index
    if index == 0:
        return func
    if index == 1:
        return f"{func}.update()"
    return f"{func}.update({index - 1})"


def _new_names(schedule: Schedule) -> List[str]:
    """Loop names introduced by split/fuse directives, in first-use order."""
    original = {v.name for v in schedule.definition.all_vars()}
    seen: Set[str] = set()
    out: List[str] = []
    for directive in schedule.directives:
        created: List[str] = []
        if directive.kind == "split":
            created = [directive.args[1], directive.args[2]]
        elif directive.kind == "fuse":
            created = [directive.args[2]]
        for name in created:
            if name not in original and name not in seen:
                seen.add(name)
                out.append(name)
    return out


def _render_directive(d: Directive, vector_lanes: int) -> str:
    if d.kind == "split":
        var, outer, inner, factor = d.args
        return f".split({var}, {outer}, {inner}, {factor})"
    if d.kind == "reorder":
        return f".reorder({', '.join(d.args)})"
    if d.kind == "fuse":
        outer, inner, fused = d.args
        return f".fuse({outer}, {inner}, {fused})"
    if d.kind == "vectorize":
        return f".vectorize({d.args[0]})"
    if d.kind == "parallel":
        return f".parallel({d.args[0]})"
    if d.kind == "unroll":
        return f".unroll({d.args[0]})"
    if d.kind == "store_nontemporal":
        return ".store_nontemporal()   // this paper's directive"
    raise KeyError(f"unknown directive kind {d.kind!r}")


def emit_halide(schedule: Schedule, *, declare_vars: bool = True) -> str:
    """Render a schedule as Halide C++ scheduling statements."""
    lines: List[str] = []
    if declare_vars:
        fresh = _new_names(schedule)
        if fresh:
            lines.append(f"Var {', '.join(fresh)};")
    if not schedule.directives:
        lines.append(f"// {schedule.func.name}: default schedule (no directives)")
        return "\n".join(lines)
    body = [_stage_expr(schedule)]
    for directive in schedule.directives:
        body.append("    " + _render_directive(directive, 0))
    body[-1] += ";"
    lines.extend(body)
    return "\n".join(lines)
