"""Algorithm definitions: ``Var``, ``RVar``, ``Buffer``, ``Func``, ``Pipeline``.

This mirrors the part of Halide the paper uses.  An algorithm is a ``Func``
with a *pure definition* and optionally *update definitions*::

    i, j = Var("i"), Var("j")
    k = RVar("k", 2048)
    A = Buffer("A", (2048, 2048), float32)
    B = Buffer("B", (2048, 2048), float32)
    C = Func("C")
    C[i, j] = 0.0
    C[i, j] = C[i, j] + A[i, k] * B[k, j]       # update with reduction var k

Layout convention: C order — the last index of every access is the
contiguous (unit-stride) dimension, exactly as in the paper's listings.

Pure variables get their extents from :meth:`Func.set_bounds`; reduction
variables carry their extent themselves (like Halide's ``RDom``).
Multi-stage algorithms (e.g. the 3mm benchmark) are modeled by a
:class:`Pipeline` whose stages run to completion one after the other
(Halide's ``compute_root``), which is how the paper schedules them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.ir.expr import Access, Expr, ExprLike, VarRef, wrap
from repro.util import ReproError, ScheduleError, ValidationError


@dataclass(frozen=True)
class DType:
    """An element type: a name and a size in bytes (the paper's ``DTS``)."""

    name: str
    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValidationError(
                f"dtype size must be positive, got {self.size}"
            )

    def __str__(self) -> str:
        return self.name


float32 = DType("float32", 4)
float64 = DType("float64", 8)
int32 = DType("int32", 4)
int64 = DType("int64", 8)
uint16 = DType("uint16", 2)
uint8 = DType("uint8", 1)


class Var(VarRef):
    """A pure loop variable.

    Being a subclass of :class:`~repro.ir.expr.VarRef`, a ``Var`` can appear
    directly inside expressions and access indices.
    """

    __slots__ = ()

    def __repr__(self) -> str:
        return f"Var({self.name!r})"


class RVar(VarRef):
    """A reduction variable with a fixed domain ``[min, min+extent)``.

    Equivalent to one dimension of a Halide ``RDom``.
    """

    __slots__ = ("min", "extent")

    def __init__(self, name: str, extent: int, min: int = 0) -> None:
        super().__init__(name)
        if extent <= 0:
            raise ValidationError(
                f"RVar {name!r} needs a positive extent, got {extent}"
            )
        self.min = min
        self.extent = extent

    def __repr__(self) -> str:
        return f"RVar({self.name!r}, extent={self.extent}, min={self.min})"


class Buffer:
    """A named dense input array with a concrete shape and dtype.

    Indexing a buffer with expressions yields an :class:`Access` node::

        A = Buffer("A", (64, 64), float32)
        e = A[i, j + 1]
    """

    def __init__(
        self, name: str, shape: Sequence[int], dtype: DType = float32
    ) -> None:
        if not name:
            raise ValidationError("buffer name must be non-empty")
        shape = tuple(int(s) for s in shape)
        if any(s <= 0 for s in shape):
            raise ValidationError(
                f"buffer {name!r} has a non-positive extent: {shape}"
            )
        self.name = name
        self.shape: Tuple[int, ...] = shape
        self.dtype = dtype

    def __getitem__(self, indices) -> Access:
        if not isinstance(indices, tuple):
            indices = (indices,)
        return Access(self, indices)

    @property
    def num_elements(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n

    @property
    def size_bytes(self) -> int:
        return self.num_elements * self.dtype.size

    def strides_elements(self) -> Tuple[int, ...]:
        """Row-major strides in *elements* (last dimension has stride 1)."""
        strides = [1] * len(self.shape)
        for d in range(len(self.shape) - 2, -1, -1):
            strides[d] = strides[d + 1] * self.shape[d + 1]
        return tuple(strides)

    def __repr__(self) -> str:
        return f"Buffer({self.name!r}, shape={self.shape}, dtype={self.dtype})"


@dataclass
class Definition:
    """One definition of a Func: the pure definition or an update.

    Attributes
    ----------
    lhs_vars:
        The pure variables on the left-hand side, outermost first.
    rhs:
        The right-hand-side expression.
    rvars:
        Reduction variables appearing on the right-hand side, in first-use
        order.  Empty for pure definitions.
    is_update:
        True for update definitions (Halide's ``f.update(n)``).
    """

    lhs_vars: Tuple[Var, ...]
    rhs: Expr
    rvars: Tuple[RVar, ...]
    is_update: bool

    def all_vars(self) -> Tuple[VarRef, ...]:
        """Pure vars followed by reduction vars (the default loop order
        places reduction variables innermost)."""
        return tuple(self.lhs_vars) + tuple(self.rvars)

    def var_names(self) -> Tuple[str, ...]:
        return tuple(v.name for v in self.all_vars())


class Func:
    """A Halide-like function: pure definition plus optional updates.

    The first assignment through ``__setitem__`` becomes the pure definition
    and fixes the output dimensionality; later assignments become update
    definitions and must use the same pure variables.  Reading ``f[i, j]``
    before any definition raises; afterwards it builds an :class:`Access` to
    the Func's output buffer (used for self-references in updates and by
    downstream pipeline stages).
    """

    def __init__(self, name: str, dtype: DType = float32) -> None:
        if not name:
            raise ValidationError("Func name must be non-empty")
        self.name = name
        self.dtype = dtype
        self.definitions: List[Definition] = []
        self._bounds: Dict[str, int] = {}

    # --- definition construction ---------------------------------------

    def __setitem__(self, indices, value: ExprLike) -> None:
        if not isinstance(indices, tuple):
            indices = (indices,)
        for ix in indices:
            if not isinstance(ix, Var) or isinstance(ix, RVar):
                raise ScheduleError(
                    f"left-hand side of {self.name!r} must use pure Vars, "
                    f"got {ix!r}"
                )
        names = [ix.name for ix in indices]
        if len(set(names)) != len(names):
            raise ScheduleError(
                f"duplicate variable on the left-hand side of {self.name!r}: {names}"
            )
        rhs = wrap(value)
        if self.definitions:
            prev = tuple(v.name for v in self.definitions[0].lhs_vars)
            if tuple(names) != prev:
                raise ScheduleError(
                    f"update of {self.name!r} must use the pure variables "
                    f"{prev}, got {tuple(names)}"
                )
        rvars = self._collect_rvars(rhs, set(names))
        self.definitions.append(
            Definition(
                lhs_vars=tuple(indices),
                rhs=rhs,
                rvars=rvars,
                is_update=bool(self.definitions),
            )
        )

    @staticmethod
    def _collect_rvars(rhs: Expr, lhs_names: set) -> Tuple[RVar, ...]:
        seen: Dict[str, RVar] = {}
        for node in rhs.walk():
            if isinstance(node, RVar) and node.name not in seen:
                if node.name in lhs_names:
                    raise ScheduleError(
                        f"variable {node.name!r} used both as a pure Var and "
                        f"an RVar"
                    )
                seen[node.name] = node
        return tuple(seen.values())

    def __getitem__(self, indices) -> Access:
        if not self.definitions:
            raise ReproError(
                f"Func {self.name!r} is read before it has a definition"
            )
        if not isinstance(indices, tuple):
            indices = (indices,)
        return Access(self, indices)

    # --- shape handling -------------------------------------------------

    @property
    def dims(self) -> int:
        """Output dimensionality (number of pure variables)."""
        if not self.definitions:
            raise ReproError(f"Func {self.name!r} has no definition yet")
        return len(self.definitions[0].lhs_vars)

    def set_bounds(self, bounds: Dict[Var, int]) -> "Func":
        """Fix the extent of each pure variable (Halide's ``bound``).

        Returns ``self`` so calls can be chained.
        """
        for var, extent in bounds.items():
            if extent <= 0:
                raise ValidationError(
                    f"extent for {var.name!r} must be positive, got {extent}"
                )
            self._bounds[var.name] = int(extent)
        return self

    def bound_of(self, var_name: str) -> int:
        """Extent of a pure or reduction variable by name."""
        if var_name in self._bounds:
            return self._bounds[var_name]
        for definition in self.definitions:
            for rv in definition.rvars:
                if rv.name == var_name:
                    return rv.extent
        raise KeyError(
            f"no bound known for variable {var_name!r} of Func {self.name!r}"
        )

    @property
    def shape(self) -> Tuple[int, ...]:
        """Concrete output shape; requires :meth:`set_bounds` first."""
        if not self.definitions:
            raise ReproError(f"Func {self.name!r} has no definition yet")
        out = []
        for v in self.definitions[0].lhs_vars:
            if v.name not in self._bounds:
                raise ReproError(
                    f"Func {self.name!r}: no bound set for pure var {v.name!r}"
                )
            out.append(self._bounds[v.name])
        return tuple(out)

    @property
    def num_elements(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n

    @property
    def size_bytes(self) -> int:
        return self.num_elements * self.dtype.size

    def strides_elements(self) -> Tuple[int, ...]:
        """Row-major strides of the output buffer, in elements."""
        shape = self.shape
        strides = [1] * len(shape)
        for d in range(len(shape) - 2, -1, -1):
            strides[d] = strides[d + 1] * shape[d + 1]
        return tuple(strides)

    # --- introspection ---------------------------------------------------

    @property
    def pure_definition(self) -> Definition:
        if not self.definitions:
            raise ReproError(f"Func {self.name!r} has no definition yet")
        return self.definitions[0]

    @property
    def updates(self) -> List[Definition]:
        return self.definitions[1:]

    def main_definition(self) -> Definition:
        """The definition the optimizer targets: the last update if any
        (that is where the real computation lives), else the pure one."""
        return self.definitions[-1]

    def input_buffers(self) -> List[object]:
        """All distinct buffers/Funcs read by any definition, excluding the
        Func's own output (self-references)."""
        seen: List[object] = []
        for definition in self.definitions:
            for acc in definition.rhs.accesses():
                buf = acc.buffer
                if buf is self:
                    continue
                if all(buf is not b for b in seen):
                    seen.append(buf)
        return seen

    def __repr__(self) -> str:
        return f"Func({self.name!r}, {len(self.definitions)} definition(s))"


class Pipeline:
    """An ordered sequence of Funcs computed stage by stage.

    Each stage is realized completely before the next starts (Halide's
    ``compute_root``), which matches how the paper schedules multi-stage
    benchmarks such as 3mm.
    """

    def __init__(self, funcs: Sequence[Func], name: Optional[str] = None) -> None:
        if not funcs:
            raise ValueError("a Pipeline needs at least one Func")
        self.funcs: Tuple[Func, ...] = tuple(funcs)
        self.name = name or self.funcs[-1].name

    @property
    def output(self) -> Func:
        return self.funcs[-1]

    def __iter__(self):
        return iter(self.funcs)

    def __len__(self) -> int:
        return len(self.funcs)

    def __repr__(self) -> str:
        stages = ", ".join(f.name for f in self.funcs)
        return f"Pipeline({self.name!r}: {stages})"


FuncOrBuffer = Union[Func, Buffer]
