"""Pseudo-C printers for expressions, schedules and lowered loop nests.

These exist for debuggability and for the examples: a lowered nest prints in
the same shape as the paper's Listings 1 and 2, so a schedule produced by
the optimizer can be eyeballed against the paper directly.
"""

from __future__ import annotations

from typing import List

from repro.ir.expr import Access, BinOp, Cast, Const, Expr, VarRef
from repro.ir.loopnest import LoopNest
from repro.ir.schedule import (
    FusedInner,
    FusedOuter,
    IndexNode,
    LeafIndex,
    LoopKind,
    SplitIndex,
)

_PRECEDENCE = {"|": 1, "&": 2, "+": 3, "-": 3, "*": 4, "/": 4}


def print_expr(expr: Expr) -> str:
    """Render an expression as C-like source text."""
    return _render(expr, 0)


def _render(expr: Expr, parent_prec: int) -> str:
    if isinstance(expr, Const):
        return str(expr.value)
    if isinstance(expr, VarRef):
        return expr.name
    if isinstance(expr, Cast):
        return f"({expr.dtype_name})({_render(expr.value, 0)})"
    if isinstance(expr, Access):
        idx = "][".join(_render(ix, 0) for ix in expr.indices)
        return f"{expr.buffer.name}[{idx}]"
    if isinstance(expr, BinOp):
        if expr.op in ("min", "max"):
            return f"{expr.op}({_render(expr.lhs, 0)}, {_render(expr.rhs, 0)})"
        prec = _PRECEDENCE[expr.op]
        text = f"{_render(expr.lhs, prec)} {expr.op} {_render(expr.rhs, prec + 1)}"
        if prec < parent_prec:
            return f"({text})"
        return text
    raise TypeError(f"cannot print expression {expr!r}")


def print_index_tree(tree: IndexNode) -> str:
    """Render an index-reconstruction tree as arithmetic."""
    if isinstance(tree, LeafIndex):
        return tree.loop
    if isinstance(tree, SplitIndex):
        return (
            f"({print_index_tree(tree.outer)} * {tree.factor} + "
            f"{print_index_tree(tree.inner)})"
        )
    if isinstance(tree, FusedOuter):
        return f"({print_index_tree(tree.fused)} / {tree.inner_extent})"
    if isinstance(tree, FusedInner):
        return f"({print_index_tree(tree.fused)} % {tree.inner_extent})"
    raise TypeError(f"cannot print index node {tree!r}")


def print_nest(nest: LoopNest, indent: str = "  ") -> str:
    """Render a lowered nest as nested pseudo-C ``for`` loops."""
    lines: List[str] = []
    depth = 0
    stream_loops = dict(nest.stmt.stream_loops)
    for loop in nest.loops:
        tag = ""
        if loop.kind is LoopKind.PARALLEL:
            tag = "  // parallel"
        elif loop.kind is LoopKind.VECTORIZED:
            tag = "  // vectorized"
        elif loop.kind is LoopKind.UNROLLED:
            tag = "  // unrolled"
        elif loop.name in stream_loops:
            tag = f"  // multistride: {stream_loops[loop.name]} streams"
        lines.append(
            f"{indent * depth}for ({loop.name} = 0; {loop.name} < "
            f"{loop.extent}; {loop.name}++){tag}"
        )
        depth += 1
    body = indent * depth
    for orig, tree in nest.stmt.index_trees.items():
        rendered = print_index_tree(tree)
        if rendered != orig:
            lines.append(f"{body}{orig} = {rendered};")
    for orig, bound in nest.stmt.guards.items():
        lines.append(f"{body}if ({orig} >= {bound}) continue;")
    store = print_expr(nest.stmt.store)
    rhs = print_expr(nest.stmt.rhs)
    nt = "  // non-temporal store" if nest.stmt.nontemporal else ""
    lines.append(f"{body}{store} = {rhs};{nt}")
    return "\n".join(lines)
