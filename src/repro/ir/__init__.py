"""A Halide-like mini-DSL and loop-nest IR.

This package is the reproduction's substitute for the Halide front end:

* :mod:`repro.ir.expr` — the expression AST (constants, loop variables,
  arithmetic, array accesses).
* :mod:`repro.ir.func` — ``Var``/``RVar``/``Buffer``/``Func``: algorithm
  definitions in the two-part Halide style (pure definition + updates).
* :mod:`repro.ir.schedule` — the scheduling language: ``split``, ``tile``,
  ``reorder``, ``fuse``, ``vectorize``, ``parallel`` and the paper's new
  ``store_nontemporal`` directive.
* :mod:`repro.ir.lower` — lowering of a (Func, Schedule) pair into the
  explicit :mod:`loop-nest IR <repro.ir.loopnest>` that the trace generator
  and the printers consume.
* :mod:`repro.ir.analysis` — the static access-pattern analysis the paper's
  classifier relies on: per-reference index sets, strides, transposition
  detection and footprints.

The DSL follows C layout conventions: the **last** index of an access is the
contiguous (unit-stride, "column") dimension, exactly as in the paper's C
listings. (Halide proper orders arguments the other way; we stick to the
paper's listings to keep the equations readable.)
"""

from repro.ir.expr import (
    Expr,
    Const,
    VarRef,
    BinOp,
    Access,
    Cast,
    wrap,
)
from repro.ir.expr import minimum, maximum
from repro.ir.func import Var, RVar, DType, Buffer, Func, Definition, Pipeline
from repro.ir.func import float32, float64, int32, int64, uint8, uint16
from repro.ir.schedule import Schedule, LoopKind, LoopSpec
from repro.ir.loopnest import Stmt, LoopNest
from repro.ir.lower import lower, lower_pipeline
from repro.ir.analysis import (
    AffineIndex,
    RefInfo,
    StatementInfo,
    analyze_definition,
    analyze_func,
)
from repro.ir.printer import print_nest, print_expr
from repro.ir.validate import validate_func, validate_schedule
from repro.ir.codegen_c import codegen, codegen_nest, signature_buffers
from repro.ir.halide_out import emit_halide
from repro.ir.serialize import (
    schedule_from_dict,
    schedule_from_json,
    schedule_to_dict,
    schedule_to_json,
)

__all__ = [
    "Expr",
    "Const",
    "VarRef",
    "BinOp",
    "Access",
    "Cast",
    "wrap",
    "Var",
    "RVar",
    "DType",
    "Buffer",
    "Func",
    "Definition",
    "float32",
    "float64",
    "int32",
    "int64",
    "uint8",
    "uint16",
    "minimum",
    "maximum",
    "Pipeline",
    "Schedule",
    "LoopKind",
    "LoopSpec",
    "Stmt",
    "LoopNest",
    "lower",
    "lower_pipeline",
    "AffineIndex",
    "RefInfo",
    "StatementInfo",
    "analyze_definition",
    "analyze_func",
    "print_nest",
    "print_expr",
    "validate_func",
    "validate_schedule",
    "codegen",
    "codegen_nest",
    "signature_buffers",
    "emit_halide",
    "schedule_from_dict",
    "schedule_from_json",
    "schedule_to_dict",
    "schedule_to_json",
]
