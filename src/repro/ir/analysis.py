"""Static access-pattern analysis of DSL statements.

The paper's classifier (Sec. 3.1) works on "the statements in the innermost
level of the loop nest": it compares the *unique index variables* of the
input arrays against those of the output array, and looks for *transposed*
appearances of arrays.  This module extracts exactly that information:

* :class:`AffineIndex` — one index expression reduced to
  ``sum(coeff_v * v) + offset`` over loop variables.
* :class:`RefInfo` — one array reference: its buffer, affine indices,
  per-dimension primary variables, leading (unit-stride) variable, and
  element strides.
* :class:`StatementInfo` — the whole statement: output reference, input
  references, reduction variables, and the derived predicates the
  classifier needs (``extra_input_vars``, ``transposed_inputs``,
  ``output_is_reused``, ``is_stencil_like``).

Only affine index expressions are supported; anything else (e.g. indirect
indexing) raises :class:`~repro.util.ClassificationError`, mirroring the
scope of the paper's model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.ir.expr import Access, BinOp, Cast, Const, Expr, VarRef
from repro.ir.func import Definition, Func
from repro.util import ClassificationError


@dataclass(frozen=True)
class AffineIndex:
    """An index expression in affine normal form.

    ``coeffs`` maps variable name to integer coefficient; ``offset`` is the
    constant term.  ``i`` becomes ``({i: 1}, 0)``; ``2*k + 1`` becomes
    ``({k: 2}, 1)``.
    """

    coeffs: Tuple[Tuple[str, int], ...]
    offset: int

    @staticmethod
    def from_expr(expr: Expr) -> "AffineIndex":
        coeffs: Dict[str, int] = {}
        offset = _accumulate(expr, 1, coeffs, 0)
        items = tuple(sorted((v, c) for v, c in coeffs.items() if c != 0))
        return AffineIndex(items, offset)

    def coeff_map(self) -> Dict[str, int]:
        return dict(self.coeffs)

    @property
    def vars(self) -> Tuple[str, ...]:
        return tuple(v for v, _ in self.coeffs)

    @property
    def primary_var(self) -> Optional[str]:
        """The variable of a single-variable index, else the first one
        (indices in the paper's benchmarks are single-variable)."""
        return self.coeffs[0][0] if self.coeffs else None

    @property
    def is_constant(self) -> bool:
        return not self.coeffs

    @property
    def is_simple(self) -> bool:
        """True for a bare ``v + c`` index (single variable, coefficient 1)."""
        return len(self.coeffs) == 1 and self.coeffs[0][1] == 1

    def __str__(self) -> str:
        parts = [
            (f"{c}*{v}" if c != 1 else v) for v, c in self.coeffs
        ]
        if self.offset or not parts:
            parts.append(str(self.offset))
        return "+".join(parts)


def _accumulate(
    expr: Expr, scale: int, coeffs: Dict[str, int], offset: int
) -> int:
    """Fold ``scale * expr`` into ``coeffs``; return the updated offset."""
    if isinstance(expr, Const):
        if not isinstance(expr.value, int):
            raise ClassificationError(
                f"non-integer constant {expr.value!r} in an index expression"
            )
        return offset + scale * expr.value
    if isinstance(expr, VarRef):
        coeffs[expr.name] = coeffs.get(expr.name, 0) + scale
        return offset
    if isinstance(expr, Cast):
        return _accumulate(expr.value, scale, coeffs, offset)
    if isinstance(expr, BinOp):
        if expr.op == "+":
            offset = _accumulate(expr.lhs, scale, coeffs, offset)
            return _accumulate(expr.rhs, scale, coeffs, offset)
        if expr.op == "-":
            offset = _accumulate(expr.lhs, scale, coeffs, offset)
            return _accumulate(expr.rhs, -scale, coeffs, offset)
        if expr.op == "*":
            lhs_const = _const_value(expr.lhs)
            rhs_const = _const_value(expr.rhs)
            if lhs_const is not None:
                return _accumulate(expr.rhs, scale * lhs_const, coeffs, offset)
            if rhs_const is not None:
                return _accumulate(expr.lhs, scale * rhs_const, coeffs, offset)
            raise ClassificationError(
                "non-affine index: product of two variables"
            )
    raise ClassificationError(f"unsupported index expression: {expr!r}")


def _const_value(expr: Expr) -> Optional[int]:
    if isinstance(expr, Const) and isinstance(expr.value, int):
        return expr.value
    return None


@dataclass
class RefInfo:
    """One array reference of the statement, analyzed."""

    access: Access
    indices: Tuple[AffineIndex, ...]
    is_output: bool

    @property
    def buffer(self):
        return self.access.buffer

    @property
    def name(self) -> str:
        return self.access.buffer.name

    @property
    def index_vars(self) -> Set[str]:
        """All loop variables appearing in any index of this reference."""
        out: Set[str] = set()
        for ix in self.indices:
            out.update(ix.vars)
        return out

    @property
    def dim_vars(self) -> Tuple[Optional[str], ...]:
        """Primary variable per dimension, outermost dimension first."""
        return tuple(ix.primary_var for ix in self.indices)

    @property
    def leading_var(self) -> Optional[str]:
        """Variable indexing the contiguous (last) dimension."""
        return self.indices[-1].primary_var

    def stride_of(self, var: str) -> int:
        """Element stride of this reference w.r.t. unit steps of ``var``.

        Computed from the buffer's row-major strides and the affine
        coefficients; a variable absent from the reference has stride 0.
        """
        strides = self.buffer.strides_elements()
        total = 0
        for dim, ix in enumerate(self.indices):
            total += ix.coeff_map().get(var, 0) * strides[dim]
        return total

    def offsets(self) -> Tuple[int, ...]:
        return tuple(ix.offset for ix in self.indices)

    def has_offsets(self) -> bool:
        return any(ix.offset != 0 for ix in self.indices)

    def shared_var_order(self, other_vars: Sequence[str]) -> Tuple[str, ...]:
        """This reference's per-dimension variables restricted to a given
        variable set, in dimension order (used for transposition checks)."""
        keep = set(other_vars)
        return tuple(v for v in self.dim_vars if v is not None and v in keep)

    def __repr__(self) -> str:
        idx = ", ".join(str(ix) for ix in self.indices)
        tag = "out" if self.is_output else "in"
        return f"RefInfo({self.name}[{idx}], {tag})"


@dataclass
class StatementInfo:
    """Everything the classifier and the cost models need about a statement."""

    func: Func
    definition: Definition
    output: RefInfo
    inputs: List[RefInfo]
    reduction_vars: Tuple[str, ...]
    ops: int
    dtype_size: int

    # ---- raw index-variable sets (paper Sec. 3.1, first test) ----

    @property
    def output_vars(self) -> Set[str]:
        return self.output.index_vars

    @property
    def input_vars(self) -> Set[str]:
        out: Set[str] = set()
        for ref in self.inputs:
            out.update(ref.index_vars)
        return out

    @property
    def extra_input_vars(self) -> Set[str]:
        """Variables used by inputs but absent from the output — the
        paper's "different unique indices" signal for temporal reuse
        (reduction dimensions such as matmul's ``k``)."""
        return self.input_vars - self.output_vars

    # ---- transposition (second test) ----

    def transposed_inputs(self) -> List[RefInfo]:
        """Inputs whose shared-variable dimension order differs from the
        output's (e.g. ``A[x][y]`` against ``out[y][x]``)."""
        out_order = [v for v in self.output.dim_vars if v is not None]
        found = []
        for ref in self.inputs:
            if ref.buffer is self.func:
                continue
            ref_order = ref.shared_var_order(out_order)
            base = tuple(v for v in out_order if v in set(ref_order))
            if len(ref_order) >= 2 and ref_order != base:
                found.append(ref)
        return found

    # ---- output reuse (NTI test) ----

    @property
    def output_is_reused(self) -> bool:
        """True when the statement reads its own output (accumulation),
        which forbids non-temporal stores."""
        return any(ref.buffer is self.func for ref in self.inputs)

    # ---- stencils ----

    def is_stencil_like(self) -> bool:
        """True when inputs use the same variables as the output but with
        constant offsets (neighborhood accesses).  The paper (citing [9])
        leaves such nests untransformed."""
        if self.extra_input_vars:
            return False
        return any(
            ref.has_offsets() for ref in self.inputs if ref.buffer is not self.func
        )

    def non_self_inputs(self) -> List[RefInfo]:
        return [ref for ref in self.inputs if ref.buffer is not self.func]

    def __repr__(self) -> str:
        return (
            f"StatementInfo({self.func.name}: out={self.output!r}, "
            f"{len(self.inputs)} input refs, rvars={self.reduction_vars})"
        )


def analyze_definition(func: Func, definition: Definition) -> StatementInfo:
    """Analyze one definition of ``func`` into a :class:`StatementInfo`."""
    output = RefInfo(
        access=Access(func, definition.lhs_vars),
        indices=tuple(AffineIndex.from_expr(v) for v in definition.lhs_vars),
        is_output=True,
    )
    inputs: List[RefInfo] = []
    for acc in definition.rhs.accesses():
        inputs.append(
            RefInfo(
                access=acc,
                indices=tuple(AffineIndex.from_expr(ix) for ix in acc.indices),
                is_output=False,
            )
        )
    return StatementInfo(
        func=func,
        definition=definition,
        output=output,
        inputs=inputs,
        reduction_vars=tuple(rv.name for rv in definition.rvars),
        ops=definition.rhs.count_ops(),
        dtype_size=func.dtype.size,
    )


def analyze_func(func: Func) -> StatementInfo:
    """Analyze the *main* definition of ``func`` (the one the optimizer
    targets)."""
    return analyze_definition(func, func.main_definition())
