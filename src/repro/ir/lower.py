"""Lowering: turn ``(Func, Schedule)`` pairs into :class:`LoopNest` IR.

``lower(func, schedule)`` returns one nest per definition of the Func.  The
schedule applies to the definition it was built for (the main one unless the
caller chose otherwise); every other definition gets a fresh default
schedule — plain loops in definition order, which for the cheap
initialization steps of the paper's benchmarks is adequate and keeps the
measured time dominated by the scheduled update, exactly as in Halide.

``lower_pipeline`` lowers each stage of a :class:`~repro.ir.func.Pipeline`
in order.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.ir.expr import Access
from repro.ir.func import Func, Pipeline
from repro.ir.loopnest import LoopNest, Stmt
from repro.ir.schedule import Schedule
from repro.ir.validate import validate_schedule
from repro.util import ScheduleError


def lower(
    func: Func,
    schedule: Optional[Schedule] = None,
    *,
    validate: bool = True,
) -> List[LoopNest]:
    """Lower every definition of ``func`` into loop nests.

    Parameters
    ----------
    func:
        The Func to lower; bounds must be set.
    schedule:
        Optional schedule; must target ``func``.  When omitted, every
        definition gets default (unscheduled) loops.
    validate:
        Run the structural validator on each schedule before lowering.

    Returns
    -------
    list of LoopNest
        One nest per definition, in execution order (pure first).
    """
    if schedule is not None and schedule.func is not func:
        raise ScheduleError(
            f"schedule targets Func {schedule.func.name!r}, not {func.name!r}"
        )
    nests: List[LoopNest] = []
    for idx in range(len(func.definitions)):
        if schedule is not None and idx == schedule.definition_index:
            sched = schedule
        else:
            sched = Schedule(func, definition_index=idx)
        if validate:
            validate_schedule(sched)
        nests.append(_lower_one(func, idx, sched))
    return nests


def _lower_one(func: Func, definition_index: int, schedule: Schedule) -> LoopNest:
    definition = func.definitions[definition_index]
    store = Access(func, definition.lhs_vars)
    stmt = Stmt(
        store=store,
        rhs=definition.rhs,
        index_trees=schedule.index_trees(),
        guards=schedule.guards(),
        nontemporal=schedule.nontemporal,
        stream_loops=tuple(sorted(schedule.stream_loops().items())),
    )
    return LoopNest(
        func=func,
        definition_index=definition_index,
        loops=tuple(schedule.loops()),
        stmt=stmt,
    )


def lower_pipeline(
    pipeline: Pipeline,
    schedules: Optional[Dict[Func, Schedule]] = None,
    *,
    validate: bool = True,
) -> List[LoopNest]:
    """Lower every stage of a pipeline, in stage order.

    ``schedules`` maps a stage Func to its schedule; unscheduled stages get
    default loops.
    """
    schedules = schedules or {}
    nests: List[LoopNest] = []
    for stage in pipeline:
        nests.extend(lower(stage, schedules.get(stage), validate=validate))
    return nests
