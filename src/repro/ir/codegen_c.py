"""C code generation for lowered loop nests.

The paper's optimizer emits Halide schedules, but Sec. 4 notes the flow
"can be used with any other compiler/back-end".  This module is that other
back end: it turns lowered nests into a self-contained C99 translation
unit —

* one function per pipeline, taking ``const`` input pointers and the
  output pointer, all ``restrict``-qualified;
* parallel loops annotated with ``#pragma omp parallel for``;
* vectorized loops annotated with ``#pragma omp simd`` (the portable
  spelling; compilers map it to AVX/NEON);
* guards from imperfect splits emitted as ``if (...) continue;``;
* non-temporal stores emitted through a ``REPRO_STREAM_STORE`` macro that
  expands to ``__builtin_nontemporal_store`` where available (clang) or
  SSE2 ``_mm_stream_si32``/``_mm_stream_ps`` on x86, with a plainstore
  fallback — mirroring the paper's Halide/LLVM extension.

The generated code is deliberately boring: it exists so schedules found by
the analytical model can be timed on real hardware, and so tests can
compile-and-run a schedule against the interpreter's output.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.ir.expr import Access, BinOp, Cast, Const, Expr, VarRef
from repro.ir.func import Buffer, Func
from repro.ir.loopnest import LoopNest
from repro.ir.printer import print_index_tree
from repro.ir.schedule import LoopKind

_C_TYPES = {
    "float32": "float",
    "float64": "double",
    "int32": "int32_t",
    "int64": "int64_t",
    "uint16": "uint16_t",
    "uint8": "uint8_t",
}

_PRELUDE = """\
#include <stdint.h>
#include <stddef.h>

#if defined(__clang__)
#  define REPRO_STREAM_STORE(addr, value) __builtin_nontemporal_store((value), (addr))
#elif defined(__SSE2__)
#  include <immintrin.h>
#  define REPRO_STREAM_STORE(addr, value) _repro_stream_store((addr), (value))
static inline void _repro_stream_store_f(float *a, float v) {
    _mm_stream_si32((int *)a, *(int *)&v);
}
static inline void _repro_stream_store_i(int32_t *a, int32_t v) {
    _mm_stream_si32((int *)a, v);
}
#  define _repro_stream_store(addr, value) _Generic((addr), \\
        float *: _repro_stream_store_f, \\
        int32_t *: _repro_stream_store_i)(addr, value)
#else
#  define REPRO_STREAM_STORE(addr, value) (*(addr) = (value))
#endif
"""


def c_type(dtype_name: str) -> str:
    """Map a DSL dtype name to its C spelling."""
    if dtype_name not in _C_TYPES:
        raise KeyError(f"no C type mapping for dtype {dtype_name!r}")
    return _C_TYPES[dtype_name]


def _flat_index(access: Access) -> str:
    """Row-major flattened index expression for an access."""
    strides = access.buffer.strides_elements()
    parts: List[str] = []
    for dim, ix in enumerate(access.indices):
        ix_src = _expr_c(ix)
        if strides[dim] == 1:
            parts.append(f"({ix_src})")
        else:
            parts.append(f"({ix_src}) * {strides[dim]}")
    return " + ".join(parts)


def _expr_c(expr: Expr) -> str:
    if isinstance(expr, Const):
        if isinstance(expr.value, float):
            return f"{expr.value}f" if expr.value == expr.value else "0.0f"
        return str(expr.value)
    if isinstance(expr, VarRef):
        return expr.name
    if isinstance(expr, Cast):
        return f"(({expr.dtype_name})({_expr_c(expr.value)}))"
    if isinstance(expr, Access):
        return f"{expr.buffer.name}[{_flat_index(expr)}]"
    if isinstance(expr, BinOp):
        if expr.op in ("min", "max"):
            fn = "fminf" if expr.op == "min" else "fmaxf"
            return f"{fn}({_expr_c(expr.lhs)}, {_expr_c(expr.rhs)})"
        return f"({_expr_c(expr.lhs)} {expr.op} {_expr_c(expr.rhs)})"
    raise TypeError(f"cannot generate C for {expr!r}")


def _collect_buffers(nests: Sequence[LoopNest]) -> Tuple[List, List[Func]]:
    """(input buffers/Funcs read, Funcs written) across the nests."""
    inputs: List = []
    outputs: List[Func] = []
    written: Set[int] = set()
    for nest in nests:
        if id(nest.func) not in written:
            written.add(id(nest.func))
            outputs.append(nest.func)
    for nest in nests:
        for acc in nest.stmt.reads:
            buf = acc.buffer
            if id(buf) in written:
                continue
            if all(buf is not b for b in inputs):
                inputs.append(buf)
    return inputs, outputs


def signature_buffers(nests: Sequence[LoopNest]) -> Tuple[List, List[Func]]:
    """The (inputs, outputs) parameter order of :func:`codegen`'s function.

    Inputs appear in first-use order across the nests, outputs in
    first-write order; callers use this to marshal arrays for ctypes.
    """
    return _collect_buffers(nests)


def codegen_nest(nest: LoopNest, indent: str = "    ") -> str:
    """Emit the body (loops + statement) of one lowered nest."""
    lines: List[str] = []
    depth = 1
    stream_loops = dict(nest.stmt.stream_loops)
    for loop in nest.loops:
        pad = indent * depth
        if loop.kind is LoopKind.PARALLEL:
            lines.append(f"{pad}#pragma omp parallel for")
        elif loop.kind is LoopKind.VECTORIZED:
            lines.append(f"{pad}#pragma omp simd")
        elif loop.name in stream_loops:
            lines.append(
                f"{pad}/* multistride: {stream_loops[loop.name]} "
                f"interleaved streams */"
            )
        lines.append(
            f"{pad}for (int64_t {loop.name} = 0; {loop.name} < "
            f"{loop.extent}; {loop.name}++) {{"
        )
        depth += 1
    pad = indent * depth
    for orig, tree in nest.stmt.index_trees.items():
        rendered = print_index_tree(tree)
        if rendered != orig:
            lines.append(f"{pad}const int64_t {orig} = {rendered};")
    for orig, bound in nest.stmt.guards.items():
        lines.append(f"{pad}if ({orig} >= {bound}) continue;")
    rhs = _expr_c(nest.stmt.rhs)
    store = nest.stmt.store
    target = f"{store.buffer.name}[{_flat_index(store)}]"
    if nest.stmt.nontemporal:
        lines.append(
            f"{pad}REPRO_STREAM_STORE(&{target}, {rhs});"
        )
    else:
        lines.append(f"{pad}{target} = {rhs};")
    for d in range(depth - 1, 0, -1):
        lines.append(f"{indent * d}}}")
    return "\n".join(lines)


def codegen(
    nests: Sequence[LoopNest],
    *,
    function_name: str = "kernel",
    include_prelude: bool = True,
) -> str:
    """Emit a complete C translation unit running ``nests`` in order.

    The function signature lists input pointers first (const,
    ``restrict``), then output pointers, in first-use order; all arrays
    are flattened row-major.
    """
    if not nests:
        raise ValueError("codegen needs at least one nest")
    inputs, outputs = _collect_buffers(nests)
    params: List[str] = []
    for buf in inputs:
        params.append(
            f"const {c_type(buf.dtype.name)} *restrict {buf.name}"
        )
    for func in outputs:
        params.append(f"{c_type(func.dtype.name)} *restrict {func.name}")
    header = f"void {function_name}({', '.join(params)})"

    pieces: List[str] = []
    if include_prelude:
        pieces.append(_PRELUDE)
    pieces.append(header + " {")
    for nest in nests:
        pieces.append(f"    /* {nest.name} */")
        pieces.append(codegen_nest(nest))
    pieces.append("}")
    return "\n".join(pieces) + "\n"
