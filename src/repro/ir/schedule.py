"""The scheduling language: split / tile / reorder / fuse / vectorize /
parallel / unroll / store_nontemporal.

A :class:`Schedule` targets one definition of a :class:`~repro.ir.func.Func`
(by default the *main* definition — the last update, where the computation
lives) and maintains, as directives are applied:

* the ordered list of loops, outermost first (:meth:`Schedule.loops`),
* for every *original* variable, an :class:`IndexNode` tree that
  reconstructs its value from the current loop counters (splits contribute
  ``outer * factor + inner``; fusions contribute ``fused // extent`` and
  ``fused % extent``),
* guard predicates ``var < bound`` for imperfect (non-dividing) splits.

``reorder`` follows Halide's convention: **arguments are given innermost
first**.  The helper :meth:`Schedule.reorder_outer_to_inner` accepts the
more natural paper/C order.

The paper's contribution to the scheduling language itself is the
``store_nontemporal`` directive (Sec. 4); here it marks the lowered store
node as non-temporal, and the cache simulator implements the bypass.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.ir.expr import VarRef
from repro.ir.func import Definition, Func
from repro.util import ScheduleError, ceil_div

VarLike = Union[str, VarRef]


def _name_of(var: VarLike) -> str:
    if isinstance(var, VarRef):
        return var.name
    if isinstance(var, str):
        return var
    raise TypeError(f"expected a Var or a name, got {var!r}")


class LoopKind(enum.Enum):
    """Execution strategy of one loop level."""

    SERIAL = "serial"
    PARALLEL = "parallel"
    VECTORIZED = "vectorized"
    UNROLLED = "unrolled"


# --------------------------------------------------------------------------
# Index reconstruction trees
# --------------------------------------------------------------------------


class IndexNode:
    """Reconstructs an original variable's value from loop counters."""

    __slots__ = ()

    def loop_names(self) -> Tuple[str, ...]:
        """Names of the loops this expression reads."""
        raise NotImplementedError


@dataclass(frozen=True)
class LeafIndex(IndexNode):
    """The value of the loop counter named ``loop``."""

    loop: str

    def loop_names(self) -> Tuple[str, ...]:
        return (self.loop,)


@dataclass(frozen=True)
class SplitIndex(IndexNode):
    """``outer * factor + inner`` — result of a loop split."""

    outer: IndexNode
    inner: IndexNode
    factor: int

    def loop_names(self) -> Tuple[str, ...]:
        return self.outer.loop_names() + self.inner.loop_names()


@dataclass(frozen=True)
class FusedOuter(IndexNode):
    """``value(fused) // inner_extent`` — outer component of a fused loop."""

    fused: IndexNode
    inner_extent: int

    def loop_names(self) -> Tuple[str, ...]:
        return self.fused.loop_names()


@dataclass(frozen=True)
class FusedInner(IndexNode):
    """``value(fused) % inner_extent`` — inner component of a fused loop."""

    fused: IndexNode
    inner_extent: int

    def loop_names(self) -> Tuple[str, ...]:
        return self.fused.loop_names()


# --------------------------------------------------------------------------
# Loop bookkeeping
# --------------------------------------------------------------------------


@dataclass
class LoopSpec:
    """One loop level of the scheduled nest.

    Attributes
    ----------
    name:
        Loop variable name (original, or created by split/fuse).
    extent:
        Constant trip count.
    kind:
        Serial / parallel / vectorized / unrolled.
    origin:
        The original variable this loop (partially) iterates, for
        diagnostics; fused loops concatenate origins with ``+``.
    """

    name: str
    extent: int
    kind: LoopKind = LoopKind.SERIAL
    origin: str = ""

    def __repr__(self) -> str:
        return f"LoopSpec({self.name!r}, extent={self.extent}, {self.kind.value})"


@dataclass(frozen=True)
class Directive:
    """A recorded scheduling call, for printing and introspection."""

    kind: str
    args: Tuple

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.args)
        return f".{self.kind}({args})"


class Schedule:
    """Mutable schedule for one definition of a Func.

    Parameters
    ----------
    func:
        The Func being scheduled; its bounds must already be set.
    definition_index:
        Which definition to schedule; defaults to the main (last) one.
    """

    def __init__(self, func: Func, definition_index: Optional[int] = None) -> None:
        if not func.definitions:
            raise ScheduleError(f"Func {func.name!r} has no definitions to schedule")
        if definition_index is None:
            definition_index = len(func.definitions) - 1
        if not 0 <= definition_index < len(func.definitions):
            raise ScheduleError(
                f"Func {func.name!r} has {len(func.definitions)} definitions; "
                f"index {definition_index} is out of range"
            )
        self.func = func
        self.definition_index = definition_index
        self.definition: Definition = func.definitions[definition_index]
        self.nontemporal = False
        self.directives: List[Directive] = []

        self._loops: List[LoopSpec] = []
        self._index: Dict[str, IndexNode] = {}
        self._guards: Dict[str, int] = {}
        self._original_bounds: Dict[str, int] = {}
        # stream-id loop name -> stream count, for loops created by
        # :meth:`multistride` (annotated through lowering and codegen).
        self._stream_loops: Dict[str, int] = {}

        for var in self.definition.all_vars():
            extent = func.bound_of(var.name)
            self._loops.append(
                LoopSpec(var.name, extent, LoopKind.SERIAL, origin=var.name)
            )
            self._index[var.name] = LeafIndex(var.name)
            self._original_bounds[var.name] = extent

    # --- introspection ----------------------------------------------------

    def loops(self) -> List[LoopSpec]:
        """Current loops, outermost first (copies; mutate via directives)."""
        return [LoopSpec(l.name, l.extent, l.kind, l.origin) for l in self._loops]

    def loop_names(self) -> List[str]:
        return [l.name for l in self._loops]

    def index_tree(self, original_var: VarLike) -> IndexNode:
        """The reconstruction tree of an original variable."""
        name = _name_of(original_var)
        if name not in self._index:
            raise ScheduleError(f"{name!r} is not an original variable of this stage")
        return self._index[name]

    def index_trees(self) -> Dict[str, IndexNode]:
        return dict(self._index)

    def guards(self) -> Dict[str, int]:
        """original var -> bound, for vars whose splits were imperfect."""
        return dict(self._guards)

    def original_bounds(self) -> Dict[str, int]:
        return dict(self._original_bounds)

    def stream_loops(self) -> Dict[str, int]:
        """stream-id loop name -> stream count, for multistrided loops."""
        return dict(self._stream_loops)

    def _find(self, name: str) -> int:
        for pos, loop in enumerate(self._loops):
            if loop.name == name:
                return pos
        raise ScheduleError(
            f"no loop named {name!r}; current loops: {self.loop_names()}"
        )

    def _check_fresh(self, name: str) -> None:
        if any(l.name == name for l in self._loops):
            raise ScheduleError(f"loop name {name!r} already exists")

    # --- directives ---------------------------------------------------------

    def split(
        self, var: VarLike, outer: str, inner: str, factor: int
    ) -> "Schedule":
        """Split loop ``var`` into ``outer`` (trip ``ceil(extent/factor)``)
        and ``inner`` (trip ``factor``), replacing it in place.

        Imperfect splits are legal; the affected original variable gains a
        guard predicate (GuardWithIf semantics).
        """
        name = _name_of(var)
        if factor <= 0:
            raise ScheduleError(f"split factor must be positive, got {factor}")
        pos = self._find(name)
        self._check_fresh(outer)
        self._check_fresh(inner)
        if outer == inner:
            raise ScheduleError("split outer and inner names must differ")
        old = self._loops[pos]
        if old.kind is not LoopKind.SERIAL:
            raise ScheduleError(
                f"cannot split loop {name!r}: it is already {old.kind.value}"
            )
        factor = min(factor, old.extent)
        outer_extent = ceil_div(old.extent, factor)
        self._loops[pos : pos + 1] = [
            LoopSpec(outer, outer_extent, LoopKind.SERIAL, origin=old.origin),
            LoopSpec(inner, factor, LoopKind.SERIAL, origin=old.origin),
        ]
        replacement = SplitIndex(LeafIndex(outer), LeafIndex(inner), factor)
        self._rewrite_index(
            name, lambda tree: self._subst(tree, name, replacement)
        )
        if outer_extent * factor != old.extent:
            # Track the guard on the *original* variable of this loop chain.
            for orig in old.origin.split("+"):
                self._guards[orig] = self._original_bounds[orig]
        self.directives.append(Directive("split", (name, outer, inner, factor)))
        return self

    def _rewrite_index(self, loop_name: str, builder) -> None:
        """Replace every read of ``loop_name`` in the index trees.

        ``builder`` receives the *whole* tree of an original variable that
        reads ``loop_name`` and returns the rewritten tree.
        """
        for orig, tree in list(self._index.items()):
            if loop_name in tree.loop_names():
                self._index[orig] = builder(tree)

    @classmethod
    def _subst(cls, tree: IndexNode, loop_name: str, repl: IndexNode) -> IndexNode:
        """Structurally substitute ``LeafIndex(loop_name)`` with ``repl``."""
        if isinstance(tree, LeafIndex):
            return repl if tree.loop == loop_name else tree
        if isinstance(tree, SplitIndex):
            return SplitIndex(
                cls._subst(tree.outer, loop_name, repl),
                cls._subst(tree.inner, loop_name, repl),
                tree.factor,
            )
        if isinstance(tree, FusedOuter):
            return FusedOuter(cls._subst(tree.fused, loop_name, repl), tree.inner_extent)
        if isinstance(tree, FusedInner):
            return FusedInner(cls._subst(tree.fused, loop_name, repl), tree.inner_extent)
        raise TypeError(f"unknown index node {tree!r}")

    def reorder(self, *vars: VarLike) -> "Schedule":
        """Reorder loops, Halide-style: **arguments innermost first**.

        The named loops are permuted among the positions they occupy;
        unnamed loops keep their positions.
        """
        names = [_name_of(v) for v in vars]
        if len(set(names)) != len(names):
            raise ScheduleError(f"duplicate loops in reorder: {names}")
        positions = sorted(self._find(n) for n in names)
        # Innermost-first argument order -> outermost-first placement order.
        placement = list(reversed(names))
        by_name = {l.name: l for l in self._loops}
        for pos, name in zip(positions, placement):
            self._loops[pos] = by_name[name]
        self.directives.append(Directive("reorder", tuple(names)))
        return self

    def reorder_outer_to_inner(self, *vars: VarLike) -> "Schedule":
        """Like :meth:`reorder` but arguments are given outermost first,
        matching the paper's C listings."""
        return self.reorder(*reversed([_name_of(v) for v in vars]))

    def fuse(self, outer: VarLike, inner: VarLike, fused: str) -> "Schedule":
        """Fuse two *adjacent* loops (outer immediately outside inner) into
        one loop of extent ``outer.extent * inner.extent``."""
        oname, iname = _name_of(outer), _name_of(inner)
        opos, ipos = self._find(oname), self._find(iname)
        if ipos != opos + 1:
            raise ScheduleError(
                f"fuse requires {oname!r} immediately outside {iname!r}; "
                f"current loops: {self.loop_names()}"
            )
        self._check_fresh(fused)
        oloop, iloop = self._loops[opos], self._loops[ipos]
        if oloop.kind is not LoopKind.SERIAL or iloop.kind is not LoopKind.SERIAL:
            raise ScheduleError("only serial loops can be fused")
        origin = f"{oloop.origin}+{iloop.origin}"
        self._loops[opos : ipos + 1] = [
            LoopSpec(fused, oloop.extent * iloop.extent, LoopKind.SERIAL, origin)
        ]
        inner_extent = iloop.extent
        self._rewrite_index(
            oname,
            lambda tree: self._subst(
                tree, oname, FusedOuter(LeafIndex(fused), inner_extent)
            ),
        )
        self._rewrite_index(
            iname,
            lambda tree: self._subst(
                tree, iname, FusedInner(LeafIndex(fused), inner_extent)
            ),
        )
        self.directives.append(Directive("fuse", (oname, iname, fused)))
        return self

    def vectorize(self, var: VarLike, width: Optional[int] = None) -> "Schedule":
        """Mark loop ``var`` vectorized.

        With ``width`` given and the loop longer than ``width``, the loop is
        first split (``var -> var_vo / var_vi``) and the inner part is
        vectorized, as Halide's two-argument ``vectorize`` does.
        """
        name = _name_of(var)
        pos = self._find(name)
        if width is not None and self._loops[pos].extent > width:
            self.split(name, f"{name}_vo", f"{name}_vi", width)
            pos = self._find(f"{name}_vi")
            name = f"{name}_vi"
        self._loops[pos].kind = LoopKind.VECTORIZED
        self.directives.append(Directive("vectorize", (name,)))
        return self

    def parallel(self, var: VarLike) -> "Schedule":
        """Mark loop ``var`` parallel (runs across cores/threads)."""
        pos = self._find(_name_of(var))
        self._loops[pos].kind = LoopKind.PARALLEL
        self.directives.append(Directive("parallel", (self._loops[pos].name,)))
        return self

    def unroll(self, var: VarLike) -> "Schedule":
        """Mark loop ``var`` unrolled (affects only loop-overhead costing)."""
        pos = self._find(_name_of(var))
        self._loops[pos].kind = LoopKind.UNROLLED
        self.directives.append(Directive("unroll", (self._loops[pos].name,)))
        return self

    def store_nontemporal(self) -> "Schedule":
        """The paper's new directive: emit non-temporal (streaming) stores
        for this definition's output."""
        self.nontemporal = True
        self.directives.append(Directive("store_nontemporal", ()))
        return self

    def multistride(
        self,
        var: VarLike,
        streams: int,
        *,
        position: Optional[str] = None,
        stream: Optional[str] = None,
    ) -> "Schedule":
        """Split loop ``var`` into ``streams`` interleaved strided
        sub-streams (the multi-striding transform of Blom et al.,
        "Multi-Strided Access Patterns to Boost Hardware Prefetching").

        The iteration space is cut into ``streams`` contiguous chunks and
        walked chunk-position-major: iteration order becomes
        ``0, c, 2c, ..., 1, c+1, 2c+1, ...`` (``c`` = chunk length), i.e.
        for each position the stream-id loop visits every chunk.  Every
        memory reference indexed by ``var`` thereby becomes ``streams``
        concurrent constant-stride streams, letting that many hardware
        prefetch engines train and run ahead simultaneously.

        Structurally this is ``split`` + ``reorder``:

        * ``position`` (default ``{var}_ms``) — the *outer* loop over
          positions within a chunk, extent ``ceil(extent / streams)``;
        * ``stream`` (default ``{var}_ss``) — the *inner* loop over stream
          ids, recorded as a stream loop and annotated through lowering,
          printing and C codegen.

        ``streams`` must be an ``int >= 2``; it is clamped to the loop
        extent, and an imperfect chunking adds the usual split guard.  The
        effective stream count (the ``stream`` loop's extent) can end up
        below ``streams`` when the extent does not divide evenly.
        """
        name = _name_of(var)
        if (
            not isinstance(streams, int)
            or isinstance(streams, bool)
            or streams < 2
        ):
            raise ScheduleError(
                f"multistride needs an integer stream count >= 2, "
                f"got {streams!r}"
            )
        pos = self._find(name)
        old = self._loops[pos]
        if old.kind is not LoopKind.SERIAL:
            raise ScheduleError(
                f"cannot multistride loop {name!r}: it is already "
                f"{old.kind.value}"
            )
        position = position or f"{name}_ms"
        stream = stream or f"{name}_ss"
        k = min(streams, old.extent)
        chunk = ceil_div(old.extent, k)
        # Record as ONE first-class directive: drop the constituent
        # split/reorder records so printing/serialization round-trip the
        # multistride call itself.
        before = len(self.directives)
        self.split(name, stream, position, chunk)
        self.reorder(stream, position)
        del self.directives[before:]
        actual_k = self._loops[self._find(stream)].extent
        self._stream_loops[stream] = actual_k
        self.directives.append(
            Directive("multistride", (name, streams, position, stream))
        )
        return self

    def tile(
        self,
        x: VarLike,
        y: VarLike,
        xo: str,
        yo: str,
        xi: str,
        yi: str,
        tx: int,
        ty: int,
    ) -> "Schedule":
        """Halide's 2-D ``tile``: split both loops and bring the two inner
        loops inside the two outer ones (order: xo, yo, xi, yi outermost to
        innermost, with ``x`` outer of ``y``)."""
        self.split(x, xo, xi, tx)
        self.split(y, yo, yi, ty)
        self.reorder(yi, xi, yo, xo)
        return self

    # --- summary ------------------------------------------------------------

    def describe(self) -> str:
        """Human-readable one-line-per-directive summary."""
        head = f"{self.func.name}.def[{self.definition_index}]"
        body = "".join(str(d) for d in self.directives)
        loops = " > ".join(
            f"{l.name}[{l.extent}]{'' if l.kind is LoopKind.SERIAL else ':' + l.kind.value}"
            for l in self._loops
        )
        return f"{head}{body}  =>  {loops}"

    def __repr__(self) -> str:
        return f"Schedule({self.describe()})"
