"""Structural validation of schedules and Funcs before lowering.

``validate_schedule`` checks invariants that every legal schedule must
satisfy; violations raise :class:`~repro.util.ScheduleError` with a message
naming the offending loop.  ``validate_func`` is the input gate of the
robust optimization flow: it rejects algorithm definitions the analytical
model cannot process (no definition, missing or non-positive bounds) with
:class:`~repro.util.ValidationError` *before* any search runs.  The checks
are deliberately structural — the *profitability* questions (is the column
loop outermost? does the tile fit?) belong to the optimizer, not the IR.
"""

from __future__ import annotations

from typing import Set

from repro.ir.func import Func
from repro.ir.schedule import (
    FusedInner,
    FusedOuter,
    IndexNode,
    LeafIndex,
    LoopKind,
    Schedule,
    SplitIndex,
)
from repro.util import ScheduleError, ValidationError, ceil_div


def validate_func(func: Func) -> None:
    """Raise :class:`ValidationError` if ``func`` is not optimizable.

    Checks, in order:

    1. the Func has at least one definition;
    2. every pure variable of the main definition has a bound set;
    3. every bound (pure extents and reduction extents) is a positive
       integer — zero or negative iteration spaces are rejected here
       instead of surfacing as divide-by-zero deep inside the cost model.
    """
    if not func.definitions:
        raise ValidationError(
            f"Func {func.name!r} has no definition; nothing to optimize"
        )
    definition = func.main_definition()
    for var in definition.lhs_vars:
        try:
            bound = func.bound_of(var.name)
        except KeyError:
            raise ValidationError(
                f"Func {func.name!r}: no bound set for pure var "
                f"{var.name!r}; call set_bounds first"
            ) from None
        if bound <= 0:
            raise ValidationError(
                f"Func {func.name!r}: bound of {var.name!r} must be "
                f"positive, got {bound}"
            )
    for rvar in definition.rvars:
        if rvar.extent <= 0:
            raise ValidationError(
                f"Func {func.name!r}: reduction var {rvar.name!r} has "
                f"non-positive extent {rvar.extent}"
            )


def _covered_extent(tree: IndexNode, extents) -> int:
    """Number of distinct values the tree can produce (loops assumed
    independent), used to verify coverage of the original bound."""
    if isinstance(tree, LeafIndex):
        return extents[tree.loop]
    if isinstance(tree, SplitIndex):
        return _covered_extent(tree.outer, extents) * tree.factor
    if isinstance(tree, (FusedOuter, FusedInner)):
        # A fused component covers what its sources covered; the fused loop
        # extent was constructed as the exact product.
        if isinstance(tree, FusedOuter):
            return ceil_div(
                _covered_extent(tree.fused, extents), tree.inner_extent
            )
        return min(_covered_extent(tree.fused, extents), tree.inner_extent)
    raise ScheduleError(f"unknown index node {tree!r}")


def validate_schedule(schedule: Schedule) -> None:
    """Raise :class:`ScheduleError` if the schedule is structurally broken.

    Checks:

    1. loop names are unique and extents positive;
    2. every loop is consumed by exactly one original variable's index tree;
    3. every original variable's tree covers at least its original bound
       (with a guard present when it overshoots);
    4. at most one loop is parallel and at most one vectorized (the subset
       of Halide this reproduction uses);
    5. a vectorized loop has a sane extent (<= 256).
    """
    names = schedule.loop_names()
    if len(set(names)) != len(names):
        raise ScheduleError(f"duplicate loop names: {names}")
    extents = {}
    for loop in schedule.loops():
        if loop.extent <= 0:
            raise ScheduleError(f"loop {loop.name!r} has extent {loop.extent}")
        extents[loop.name] = loop.extent

    consumed: Set[str] = set()
    for orig, tree in schedule.index_trees().items():
        # A tree may legitimately read one loop several times (splitting a
        # fused loop re-reads it through FusedOuter and FusedInner), so no
        # uniqueness requirement here — only existence.
        used = tree.loop_names()
        for name in used:
            if name not in extents:
                raise ScheduleError(
                    f"index tree of {orig!r} reads unknown loop {name!r}"
                )
        consumed.update(used)

        covered = _covered_extent(tree, extents)
        bound = schedule.original_bounds()[orig]
        if covered < bound:
            raise ScheduleError(
                f"schedule covers only {covered} of {bound} iterations of "
                f"{orig!r}"
            )
        if covered > bound and orig not in schedule.guards():
            raise ScheduleError(
                f"schedule overshoots {orig!r} ({covered} > {bound}) without "
                f"a guard"
            )

    # Fused loops feed two variables, so compare against the union instead
    # of demanding a bijection.
    stray = set(extents) - consumed
    if stray:
        raise ScheduleError(f"loop(s) {sorted(stray)} drive no variable")

    parallel = [l for l in schedule.loops() if l.kind is LoopKind.PARALLEL]
    if len(parallel) > 1:
        raise ScheduleError(
            f"at most one parallel loop is supported, got "
            f"{[l.name for l in parallel]}"
        )
    vectorized = [l for l in schedule.loops() if l.kind is LoopKind.VECTORIZED]
    if len(vectorized) > 1:
        raise ScheduleError(
            f"at most one vectorized loop is supported, got "
            f"{[l.name for l in vectorized]}"
        )
    for loop in vectorized:
        if loop.extent > 256:
            raise ScheduleError(
                f"vectorized loop {loop.name!r} has extent {loop.extent}; "
                f"split it first (limit 256)"
            )

    # Stream-id loops recorded by multistride must still exist, stay
    # serial (the interleaving is the point — parallelizing or
    # vectorizing the stream loop destroys it) and match the recorded
    # stream count.
    for name, count in schedule.stream_loops().items():
        if name not in extents:
            raise ScheduleError(
                f"multistride stream loop {name!r} no longer exists"
            )
        loop = next(l for l in schedule.loops() if l.name == name)
        if loop.kind is not LoopKind.SERIAL:
            raise ScheduleError(
                f"multistride stream loop {name!r} must stay serial, "
                f"is {loop.kind.value}"
            )
        if loop.extent != count:
            raise ScheduleError(
                f"multistride stream loop {name!r} has extent "
                f"{loop.extent}, expected {count} streams"
            )
