"""Expression AST for the mini-DSL.

The AST is intentionally small: the analytical model only needs to see
*which arrays are accessed with which affine indices*, and the simulator only
needs to *enumerate addresses* and count arithmetic operations.  Expressions
are immutable; Python operators on :class:`Expr` build the tree, so algorithm
definitions read like the paper's listings::

    C[i, j] = C[i, j] + A[i, k] * B[k, j]

Supported index expressions are affine combinations of loop variables plus a
constant (``i``, ``k + 1``, ``2 * j - 1``); anything else raises during
analysis, mirroring the paper's scope (dense affine loop nests).
"""

from __future__ import annotations

from typing import Iterator, Sequence, Tuple, Union

Number = Union[int, float]


class Expr:
    """Base class of all expression nodes.

    Provides operator overloads so user code can write natural arithmetic.
    Subclasses are immutable value objects with structural equality.
    """

    __slots__ = ()

    # --- operator sugar -------------------------------------------------

    def __add__(self, other: "ExprLike") -> "BinOp":
        return BinOp("+", self, wrap(other))

    def __radd__(self, other: "ExprLike") -> "BinOp":
        return BinOp("+", wrap(other), self)

    def __sub__(self, other: "ExprLike") -> "BinOp":
        return BinOp("-", self, wrap(other))

    def __rsub__(self, other: "ExprLike") -> "BinOp":
        return BinOp("-", wrap(other), self)

    def __mul__(self, other: "ExprLike") -> "BinOp":
        return BinOp("*", self, wrap(other))

    def __rmul__(self, other: "ExprLike") -> "BinOp":
        return BinOp("*", wrap(other), self)

    def __truediv__(self, other: "ExprLike") -> "BinOp":
        return BinOp("/", self, wrap(other))

    def __rtruediv__(self, other: "ExprLike") -> "BinOp":
        return BinOp("/", wrap(other), self)

    def __and__(self, other: "ExprLike") -> "BinOp":
        return BinOp("&", self, wrap(other))

    def __rand__(self, other: "ExprLike") -> "BinOp":
        return BinOp("&", wrap(other), self)

    def __or__(self, other: "ExprLike") -> "BinOp":
        return BinOp("|", self, wrap(other))

    def __ror__(self, other: "ExprLike") -> "BinOp":
        return BinOp("|", wrap(other), self)

    def __neg__(self) -> "BinOp":
        return BinOp("-", Const(0), self)

    # --- traversal ------------------------------------------------------

    def children(self) -> Tuple["Expr", ...]:
        """Direct sub-expressions (empty for leaves)."""
        return ()

    def walk(self) -> Iterator["Expr"]:
        """Pre-order traversal of the subtree rooted at this node."""
        yield self
        for child in self.children():
            yield from child.walk()

    def accesses(self) -> Iterator["Access"]:
        """All :class:`Access` nodes in this subtree, in source order."""
        for node in self.walk():
            if isinstance(node, Access):
                yield node

    def count_ops(self) -> int:
        """Number of arithmetic/logic operations in this subtree."""
        return sum(1 for node in self.walk() if isinstance(node, BinOp))


ExprLike = Union[Expr, Number]


def wrap(value: ExprLike) -> Expr:
    """Coerce a Python number into a :class:`Const`; pass Exprs through."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        return Const(int(value))
    if isinstance(value, (int, float)):
        return Const(value)
    raise TypeError(f"cannot use {value!r} ({type(value).__name__}) as an expression")


class Const(Expr):
    """A numeric literal."""

    __slots__ = ("value",)

    def __init__(self, value: Number) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Const({self.value!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Const) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("Const", self.value))


class VarRef(Expr):
    """A reference to a loop variable by name.

    Built from :class:`repro.ir.func.Var` / ``RVar`` when they appear inside
    expressions; carries only the name so that expressions stay decoupled
    from scheduling state.
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("variable name must be non-empty")
        self.name = name

    def __repr__(self) -> str:
        return f"VarRef({self.name!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VarRef) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("VarRef", self.name))


class BinOp(Expr):
    """A binary arithmetic or logic operation."""

    __slots__ = ("op", "lhs", "rhs")

    #: Operators the DSL understands; `/` is element-wise (float) division.
    OPS = ("+", "-", "*", "/", "&", "|", "min", "max")

    def __init__(self, op: str, lhs: Expr, rhs: Expr) -> None:
        if op not in self.OPS:
            raise ValueError(f"unknown operator {op!r}; known: {self.OPS}")
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    def children(self) -> Tuple[Expr, ...]:
        return (self.lhs, self.rhs)

    def __repr__(self) -> str:
        return f"BinOp({self.op!r}, {self.lhs!r}, {self.rhs!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BinOp)
            and self.op == other.op
            and self.lhs == other.lhs
            and self.rhs == other.rhs
        )

    def __hash__(self) -> int:
        return hash(("BinOp", self.op, self.lhs, self.rhs))


def minimum(a: ExprLike, b: ExprLike) -> BinOp:
    """Element-wise minimum, as an expression node."""
    return BinOp("min", wrap(a), wrap(b))


def maximum(a: ExprLike, b: ExprLike) -> BinOp:
    """Element-wise maximum, as an expression node."""
    return BinOp("max", wrap(a), wrap(b))


class Cast(Expr):
    """A type conversion; carries the target type name for printing only."""

    __slots__ = ("dtype_name", "value")

    def __init__(self, dtype_name: str, value: Expr) -> None:
        self.dtype_name = dtype_name
        self.value = value

    def children(self) -> Tuple[Expr, ...]:
        return (self.value,)

    def __repr__(self) -> str:
        return f"Cast({self.dtype_name!r}, {self.value!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Cast)
            and self.dtype_name == other.dtype_name
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash(("Cast", self.dtype_name, self.value))


class Access(Expr):
    """A read of ``buffer[indices...]``.

    The **last** index is the contiguous (unit-stride) dimension, matching
    the paper's C listings.  ``buffer`` is any object with ``name``,
    ``shape`` and ``dtype`` attributes (a :class:`repro.ir.func.Buffer` or a
    realized :class:`repro.ir.func.Func` output).
    """

    __slots__ = ("buffer", "indices")

    def __init__(self, buffer, indices: Sequence[ExprLike]) -> None:
        if len(indices) == 0:
            raise ValueError(f"access to {buffer!r} needs at least one index")
        # Funcs expose `dims` (rank known before bounds are set); Buffers
        # expose a concrete `shape`.
        rank = getattr(buffer, "dims", None)
        if rank is None:
            rank = len(buffer.shape)
        if len(indices) != rank:
            raise ValueError(
                f"buffer {buffer.name!r} has {rank} dimensions, "
                f"got {len(indices)} indices"
            )
        self.buffer = buffer
        self.indices = tuple(wrap(ix) for ix in indices)

    def children(self) -> Tuple[Expr, ...]:
        return self.indices

    def __repr__(self) -> str:
        idx = ", ".join(repr(ix) for ix in self.indices)
        return f"Access({self.buffer.name}, [{idx}])"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Access)
            and self.buffer is other.buffer
            and self.indices == other.indices
        )

    def __hash__(self) -> int:
        return hash(("Access", id(self.buffer), self.indices))
