"""Schedule serialization: save a schedule, replay it on a fresh Func.

Schedules are plain sequences of directives, so they serialize naturally:

* :func:`schedule_to_dict` captures the directive list (plus the stage it
  applies to) in a JSON-compatible structure;
* :func:`schedule_from_dict` replays the directives on another Func with
  the same definition shape — the primary use is caching expensive
  autotuner results across processes, or shipping a schedule found on one
  machine to another.

Replays are validated structurally: directive arguments are checked by the
Schedule methods themselves, so a schedule saved for one algorithm fails
loudly when replayed onto an incompatible one.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.ir.func import Func
from repro.ir.schedule import Schedule
from repro.util import ScheduleError

#: Format tag so future changes stay detectable.
_FORMAT = "repro-schedule-v1"


def schedule_to_dict(schedule: Schedule) -> Dict:
    """Capture a schedule as a JSON-compatible dict."""
    return {
        "format": _FORMAT,
        "func": schedule.func.name,
        "definition_index": schedule.definition_index,
        "directives": [
            {"kind": d.kind, "args": list(d.args)} for d in schedule.directives
        ],
    }


def schedule_to_json(schedule: Schedule, *, indent: int = 2) -> str:
    """Like :func:`schedule_to_dict`, rendered as a JSON string."""
    return json.dumps(schedule_to_dict(schedule), indent=indent)


def schedule_from_dict(func: Func, payload: Dict) -> Schedule:
    """Replay a serialized schedule onto ``func``.

    Raises :class:`~repro.util.ScheduleError` when the payload is not a
    recognized schedule format or a directive cannot be applied to this
    Func's loops.
    """
    if payload.get("format") != _FORMAT:
        raise ScheduleError(
            f"not a serialized schedule (format={payload.get('format')!r})"
        )
    schedule = Schedule(
        func, definition_index=payload.get("definition_index")
    )
    for entry in payload.get("directives", []):
        kind = entry.get("kind")
        args = entry.get("args", [])
        if kind == "split":
            var, outer, inner, factor = args
            schedule.split(var, outer, inner, int(factor))
        elif kind == "reorder":
            schedule.reorder(*args)
        elif kind == "fuse":
            outer, inner, fused = args
            schedule.fuse(outer, inner, fused)
        elif kind == "vectorize":
            # Recorded vectorize directives name the final (possibly
            # auto-split) loop, so no width is replayed.
            schedule.vectorize(args[0])
        elif kind == "parallel":
            schedule.parallel(args[0])
        elif kind == "unroll":
            schedule.unroll(args[0])
        elif kind == "store_nontemporal":
            schedule.store_nontemporal()
        elif kind == "multistride":
            var, streams, position, stream = args
            schedule.multistride(
                var, int(streams), position=position, stream=stream
            )
        else:
            raise ScheduleError(f"unknown directive kind {kind!r}")
    return schedule


def schedule_from_json(func: Func, text: str) -> Schedule:
    """Replay a schedule serialized by :func:`schedule_to_json`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ScheduleError(f"invalid schedule JSON: {exc}") from exc
    return schedule_from_dict(func, payload)
