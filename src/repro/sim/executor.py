"""Drive generated traces through the cache hierarchy.

``run_nests`` executes a sequence of lowered nests (the definitions of one
or more pipeline stages, in order) against one shared
:class:`~repro.cachesim.CacheHierarchy`, so later stages see the cache state
earlier stages left behind — as on real hardware.

Each nest gets its own line budget; the per-nest counter deltas and the
sampling scale factor are recorded in a :class:`NestCounters` for the timing
model to extrapolate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cachesim import CacheHierarchy
from repro.ir.loopnest import LoopNest
from repro.obs.events import EVENT_SIM_NEST
from repro.obs.tracer import current_tracer
from repro.sim.trace import MemoryLayout, TraceGenerator


@dataclass
class NestCounters:
    """Simulated counters for one nest, before extrapolation."""

    nest: LoopNest
    l1_hits: int = 0
    l2_hits: int = 0
    l3_hits: int = 0
    mem_lines: int = 0
    prefetch_mem_lines: int = 0
    nt_lines: int = 0
    writeback_lines: int = 0
    late_pf_hits: int = 0
    simulated_stmts: int = 0
    total_stmts: int = 0
    emitted_lines: int = 0
    truncated: bool = False

    @property
    def scale(self) -> float:
        if self.simulated_stmts <= 0:
            return 1.0
        return max(1.0, self.total_stmts / self.simulated_stmts)

    @property
    def demand_accesses(self) -> int:
        return self.l1_hits + self.l2_hits + self.l3_hits + self.mem_lines

    def scaled(self, name: str) -> float:
        """A counter extrapolated to the full nest."""
        return getattr(self, name) * self.scale


@dataclass
class SimResult:
    """Outcome of simulating a whole pipeline: per-nest counters plus the
    shared hierarchy and layout (exposed for diagnostics/tests)."""

    counters: List[NestCounters]
    hierarchy: CacheHierarchy
    layout: MemoryLayout

    def nest_named(self, name: str) -> NestCounters:
        for c in self.counters:
            if c.nest.name == name:
                return c
        raise KeyError(f"no simulated nest named {name!r}")

    def total_scaled(self, name: str) -> float:
        return sum(c.scaled(name) for c in self.counters)


#: An inner block larger than this is treated as unsampleable: untiled
#: nests have gigantic "inner blocks" (their whole row/plane sweeps) whose
#: steady state arrives within any reasonable window anyway, so only
#: genuine tile bodies — bounded by the cache working-set constraints —
#: should grow the window.
_MAX_REUSE_BLOCK = 150_000
#: Hard ceiling on any adaptively grown window.
_MAX_ADAPTIVE_BUDGET = 400_000


def _adaptive_budget(nest: LoopNest, base: int) -> int:
    """Grow the sampling window to cover the nest's inner reuse block.

    A tiled nest only shows its steady-state hit rates once the window
    spans a couple of complete tile passes; a window smaller than one pass
    measures pure cold-start and wildly overestimates latency.  The block
    is the longest innermost run of loops whose combined trip count stays
    within :data:`_MAX_REUSE_BLOCK`; the window gets twice that (in line
    accesses, which for strided reference mixes is about one per
    statement).
    """
    block = 1
    for loop in reversed(nest.loops):
        if block * loop.extent > _MAX_REUSE_BLOCK:
            break
        block *= loop.extent
    needed = 2 * block
    # Never grow beyond 8x the configured budget (smoke runs with tiny
    # budgets stay tiny) nor beyond the hard ceiling.
    return max(base, min(needed, 8 * base, _MAX_ADAPTIVE_BUDGET))


def run_nests(
    nests: Sequence[LoopNest],
    hierarchy: CacheHierarchy,
    *,
    layout: Optional[MemoryLayout] = None,
    line_budget: int = 200_000,
    adaptive_budget: bool = True,
) -> SimResult:
    """Simulate ``nests`` in order on ``hierarchy``.

    Parameters
    ----------
    nests:
        Lowered nests, in execution order.
    hierarchy:
        The (fresh or pre-warmed) cache hierarchy to run against.
    layout:
        Shared memory layout; created on demand.  Pass one explicitly when
        several ``run_nests`` calls must agree on buffer placement.
    line_budget:
        Per-nest cap on emitted line accesses (sampling window).
    adaptive_budget:
        Grow the window so it covers at least two of the nest's inner
        reuse blocks (see :func:`_adaptive_budget`); strongly recommended
        for tiled schedules.
    """
    layout = layout or MemoryLayout()
    out: List[NestCounters] = []
    num_levels = hierarchy.num_levels
    tracer = current_tracer()
    for nest in nests:
        budget = (
            _adaptive_budget(nest, line_budget)
            if adaptive_budget
            else line_budget
        )
        counters = NestCounters(nest=nest)
        # Window 1: a prefix of the iteration space.  If it does not cover
        # the nest, add a second window starting mid-space: long-distance
        # capacity misses (e.g. re-reading a whole input per outer filter
        # iteration) are invisible to a start-anchored window but dominate
        # such nests' real traffic.
        first = _run_window(
            nest, hierarchy, layout, counters, budget // 2 + budget % 2,
            phase=0.0, num_levels=num_levels,
        )
        if first.truncated:
            _run_window(
                nest, hierarchy, layout, counters, budget // 2,
                phase=0.5, num_levels=num_levels,
            )
            counters.truncated = True
        counters.total_stmts = first.total_stmts
        out.append(counters)
        if tracer.enabled:
            tracer.count("sim.nests")
            tracer.event(
                EVENT_SIM_NEST,
                nest=nest.name,
                l1_hits=counters.l1_hits,
                l2_hits=counters.l2_hits,
                l3_hits=counters.l3_hits,
                mem_lines=counters.mem_lines,
                prefetch_mem_lines=counters.prefetch_mem_lines,
                nt_lines=counters.nt_lines,
                writeback_lines=counters.writeback_lines,
                simulated_stmts=counters.simulated_stmts,
                total_stmts=counters.total_stmts,
                coverage=(
                    counters.simulated_stmts / counters.total_stmts
                    if counters.total_stmts
                    else 1.0
                ),
                truncated=counters.truncated,
                line_budget=budget,
            )
    return SimResult(counters=out, hierarchy=hierarchy, layout=layout)


def _run_window(
    nest: LoopNest,
    hierarchy: CacheHierarchy,
    layout: MemoryLayout,
    counters: NestCounters,
    budget: int,
    *,
    phase: float,
    num_levels: int,
):
    """Stream one sampling window into the hierarchy, accumulating into
    ``counters``; returns the window's trace record."""
    gen = TraceGenerator(
        nest, layout, hierarchy.line_size, line_budget=budget, phase=phase
    )
    pf_mem_before = hierarchy.stats.prefetch_memory_lines
    wb_before = hierarchy.stats.writeback_lines
    late_before = hierarchy.stats.late_prefetch_hits
    access = hierarchy.access
    nt_store = hierarchy.nt_store
    level_hits = [0] * (num_levels + 2)
    for chunk in gen.chunks():
        ref_id = chunk.ref_id
        if chunk.nontemporal:
            before = hierarchy.stats.nt_store_lines
            for line in chunk.lines.tolist():
                nt_store(line)
            # Count DRAM transactions (after write-combining), not
            # emitted store accesses.
            counters.nt_lines += hierarchy.stats.nt_store_lines - before
            continue
        is_write = chunk.is_store
        for line in chunk.lines.tolist():
            result = access(line, is_write=is_write, ref_id=ref_id)
            level_hits[result.hit_level] += 1
    counters.l1_hits += level_hits[1]
    counters.l2_hits += level_hits[2]
    if num_levels >= 3:
        counters.l3_hits += level_hits[3]
        counters.mem_lines += level_hits[4]
    else:
        counters.mem_lines += level_hits[3]
    counters.simulated_stmts += gen.record.simulated_stmts
    counters.emitted_lines += gen.record.emitted_lines
    counters.truncated = counters.truncated or gen.record.truncated
    counters.prefetch_mem_lines += (
        hierarchy.stats.prefetch_memory_lines - pf_mem_before
    )
    counters.writeback_lines += hierarchy.stats.writeback_lines - wb_before
    counters.late_pf_hits += hierarchy.stats.late_prefetch_hits - late_before
    return gen.record
