"""Execution simulation: loop nests -> memory trace -> cache sim -> time.

The pipeline is:

1. :mod:`repro.sim.trace` assigns every buffer a base address and walks a
   lowered :class:`~repro.ir.loopnest.LoopNest`, emitting **cache-line
   granular** access chunks (numpy-vectorized over the innermost loop).
   Long nests are *sampled*: emission stops after a line budget and the
   covered fraction of the iteration space is recorded so costs can be
   extrapolated.
2. :mod:`repro.sim.executor` feeds the chunks through a
   :class:`~repro.cachesim.CacheHierarchy` and collects per-nest counter
   deltas.
3. :mod:`repro.sim.timing` converts counters into milliseconds with a
   documented cost model (issue width, vector lanes, per-level latencies,
   memory-level parallelism, a DRAM bandwidth roofline, and core scaling
   for parallel loops).
4. :mod:`repro.sim.machine` is the user-facing facade:
   ``Machine(arch).time_funcs(...)`` and friends.
"""

from repro.sim.trace import MemoryLayout, TraceGenerator, NestTrace
from repro.sim.executor import NestCounters, SimResult, run_nests
from repro.sim.timing import TimingModel, NestTime
from repro.sim.machine import Machine, MachineReport
from repro.sim.report import explain
from repro.sim.interpret import (
    BufferStore,
    execute,
    execute_nest,
    execute_pipeline,
)

__all__ = [
    "MemoryLayout",
    "TraceGenerator",
    "NestTrace",
    "NestCounters",
    "SimResult",
    "run_nests",
    "TimingModel",
    "NestTime",
    "Machine",
    "MachineReport",
    "explain",
    "BufferStore",
    "execute",
    "execute_nest",
    "execute_pipeline",
]
