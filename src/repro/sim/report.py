"""Human-readable diagnostics for simulation results.

``explain`` turns a :class:`~repro.sim.machine.MachineReport` into the
kind of analysis a performance engineer would write: per-nest hit-rate
pyramids, prefetch usefulness, DRAM traffic decomposition, the binding
bottleneck (core vs bandwidth) and the parallel/vector utilization the
timing model credited.  The experiment regenerators print numbers; this
module answers *why* a schedule got them.
"""

from __future__ import annotations

from typing import List

from repro.sim.executor import NestCounters
from repro.sim.machine import MachineReport
from repro.sim.timing import NestTime


def _pct(part: float, whole: float) -> str:
    if whole <= 0:
        return "  n/a"
    return f"{100.0 * part / whole:5.1f}%"


def _mb(lines: float, line_size: int) -> float:
    return lines * line_size / 1e6


def explain_nest(counters: NestCounters, timing: NestTime, line_size: int) -> str:
    """One nest's diagnostic block."""
    total = counters.demand_accesses or 1
    lines: List[str] = [f"{counters.nest.name}:"]
    lines.append(
        "  demand hits: L1 "
        f"{_pct(counters.l1_hits, total)}  L2 {_pct(counters.l2_hits, total)}"
        f"  L3 {_pct(counters.l3_hits, total)}  DRAM "
        f"{_pct(counters.mem_lines, total)}"
    )
    dram_lines = (
        counters.scaled("mem_lines")
        + counters.scaled("prefetch_mem_lines")
        + counters.scaled("nt_lines")
        + counters.scaled("writeback_lines")
    )
    lines.append(
        "  DRAM traffic (extrapolated): "
        f"{_mb(dram_lines, line_size):8.1f} MB  "
        f"(demand {_mb(counters.scaled('mem_lines'), line_size):.1f}, "
        f"prefetch {_mb(counters.scaled('prefetch_mem_lines'), line_size):.1f}, "
        f"NT stores {_mb(counters.scaled('nt_lines'), line_size):.1f}, "
        f"write-backs {_mb(counters.scaled('writeback_lines'), line_size):.1f})"
    )
    bound = "DRAM bandwidth" if timing.dram_cycles >= timing.core_cycles else "core"
    lines.append(
        f"  bottleneck: {bound}  "
        f"(core {timing.core_cycles / 1e6:.1f} Mcyc vs "
        f"dram {timing.dram_cycles / 1e6:.1f} Mcyc; "
        f"threads {timing.threads_used:.1f})"
    )
    core_total = (
        timing.issue_cycles + timing.loop_cycles + timing.latency_cycles
    ) or 1
    lines.append(
        "  core cycles: issue "
        f"{_pct(timing.issue_cycles, core_total)}  loop-overhead "
        f"{_pct(timing.loop_cycles, core_total)}  memory-latency "
        f"{_pct(timing.latency_cycles, core_total)}"
    )
    if counters.truncated:
        lines.append(
            f"  (sampled: {counters.simulated_stmts} of "
            f"{counters.total_stmts} statements, x{counters.scale:.0f} "
            "extrapolation)"
        )
    return "\n".join(lines)


def explain(report: MachineReport) -> str:
    """Full diagnostic text for a machine report."""
    line_size = report.sim.hierarchy.line_size
    blocks = [f"total: {report.total_ms:.3f} ms simulated"]
    for counters, timing in zip(report.sim.counters, report.nest_times):
        blocks.append(explain_nest(counters, timing, line_size))
    return "\n".join(blocks)
