"""The ``Machine`` facade: schedule in, milliseconds out.

A :class:`Machine` bundles a platform (:class:`~repro.arch.ArchSpec`), the
trace/simulation knobs and the timing model, and exposes one-call
evaluation used by every experiment and baseline::

    machine = Machine(intel_i7_5930k())
    ms = machine.time_funcs([(matmul_func, schedule)])

Multi-core realism is approximated the same way the paper's own model does
it: the L3 capacity available to one thread's trace is divided by the number
of cores when the schedule is parallel, and the L1/L2 associativity is
divided by the SMT threads per core (or by the core count for the ARM A15's
shared L2).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.arch import ArchSpec
from repro.cachesim import CacheHierarchy, StreamModelParams
from repro.ir.func import Func, Pipeline
from repro.ir.loopnest import LoopNest
from repro.ir.lower import lower, lower_pipeline
from repro.ir.schedule import Schedule
from repro.obs.events import EVENT_SIM_STREAMS, EVENT_SIM_TOTAL
from repro.obs.tracer import activate_tracer, current_tracer
from repro.sim.executor import SimResult, run_nests
from repro.sim.timing import NestTime, TimingModel, time_nest, total_time_ms
from repro.sim.trace import MemoryLayout
from repro.util import ValidationError, checkpoint

FuncSchedules = Sequence[Tuple[Func, Optional[Schedule]]]


@dataclass
class MachineReport:
    """A simulation outcome: time plus everything needed to explain it."""

    total_ms: float
    nest_times: List[NestTime]
    sim: SimResult

    def breakdown(self) -> str:
        rows = []
        for t in self.nest_times:
            rows.append(
                f"  {t.nest_name}: {t.total_cycles / 1e6:.2f} Mcycles "
                f"(core {t.core_cycles / 1e6:.2f}, dram {t.dram_cycles / 1e6:.2f}, "
                f"threads {t.threads_used:.1f})"
            )
        return f"total {self.total_ms:.3f} ms\n" + "\n".join(rows)


class Machine:
    """A simulated execution platform.

    Parameters
    ----------
    arch:
        The platform to model.
    timing:
        Timing-model constants; defaults are documented in
        :class:`~repro.sim.timing.TimingModel`.
    line_budget:
        Per-nest sampling budget (line accesses) for the trace generator.
    enable_prefetch:
        Master prefetcher switch (ablations).
    stream_model:
        Optional :class:`~repro.cachesim.StreamModelParams` enabling the
        bounded multi-stream detector model (multi-striding evaluation).
        ``None`` — the default for every committed baseline — keeps the
        legacy prefetcher model bit-for-bit.
    tracer:
        Optional :class:`repro.obs.Tracer` installed as the ambient
        tracer for every simulation this machine runs (``sim.nest`` /
        ``sim.total`` events, a ``sim.run`` span).  ``None`` defers to
        whatever tracer the caller has active.
    """

    def __init__(
        self,
        arch: ArchSpec,
        *,
        timing: Optional[TimingModel] = None,
        line_budget: int = 200_000,
        enable_prefetch: bool = True,
        stream_model: Optional[StreamModelParams] = None,
        tracer=None,
    ) -> None:
        if line_budget <= 0:
            raise ValidationError(
                f"line budget must be positive, got {line_budget}"
            )
        self.arch = arch
        self.timing = timing or TimingModel()
        self.line_budget = line_budget
        self.enable_prefetch = enable_prefetch
        self.stream_model = stream_model
        self.tracer = tracer

    # ------------------------------------------------------------------

    def _build_hierarchy(self, parallel: bool) -> CacheHierarchy:
        l1_div = 1
        l2_div = 1
        l3_div = 1
        if parallel:
            if self.arch.l2_shared_across_cores:
                # ARM A15: private L1, L2 shared by every core.
                l2_div = self.arch.n_cores
            elif self.arch.threads_per_core > 1:
                # Intel SMT: two threads co-resident in private L1/L2.
                l1_div = self.arch.threads_per_core
                l2_div = self.arch.threads_per_core
            l3_div = self.arch.n_cores
        return CacheHierarchy(
            self.arch,
            l1_ways_divisor=l1_div,
            l2_ways_divisor=l2_div,
            l3_capacity_divisor=l3_div,
            enable_prefetch=self.enable_prefetch,
            stream_model=self.stream_model,
        )

    def run_lowered(
        self, nests: Sequence[LoopNest], *, layout: Optional[MemoryLayout] = None
    ) -> MachineReport:
        """Simulate already-lowered nests and price them."""
        checkpoint("simulation")
        with contextlib.ExitStack() as stack:
            if self.tracer is not None:
                stack.enter_context(activate_tracer(self.tracer))
            tracer = current_tracer()
            stack.enter_context(tracer.span("sim.run", nests=len(nests)))
            parallel = any(n.parallel_loops() for n in nests)
            hierarchy = self._build_hierarchy(parallel)
            sim = run_nests(
                nests, hierarchy, layout=layout, line_budget=self.line_budget
            )
            nest_times = [
                time_nest(c, self.arch, self.timing) for c in sim.counters
            ]
            total = total_time_ms(sim.counters, self.arch, self.timing)
            if tracer.enabled:
                tracer.event(
                    EVENT_SIM_TOTAL,
                    total_ms=round(total, 6),
                    nests=len(nests),
                    parallel=parallel,
                )
                if self.stream_model is not None:
                    multi = hierarchy.stats.stream_tables.get("multi_stream")
                    if multi is not None:
                        tracer.event(
                            EVENT_SIM_STREAMS,
                            late_prefetch_hits=hierarchy.stats.late_prefetch_hits,
                            **multi.snapshot(),
                        )
            return MachineReport(
                total_ms=total, nest_times=nest_times, sim=sim
            )

    def run_funcs(self, items: FuncSchedules) -> MachineReport:
        """Lower and simulate ``(Func, Schedule-or-None)`` pairs in order."""
        nests: List[LoopNest] = []
        for func, schedule in items:
            nests.extend(lower(func, schedule))
        return self.run_lowered(nests)

    def run_pipeline(
        self,
        pipeline: Pipeline,
        schedules: Optional[Dict[Func, Schedule]] = None,
    ) -> MachineReport:
        """Lower and simulate every stage of a pipeline."""
        nests = lower_pipeline(pipeline, schedules)
        return self.run_lowered(nests)

    # Convenience one-liners -------------------------------------------

    def time_funcs(self, items: FuncSchedules) -> float:
        return self.run_funcs(items).total_ms

    def time_pipeline(
        self,
        pipeline: Pipeline,
        schedules: Optional[Dict[Func, Schedule]] = None,
    ) -> float:
        return self.run_pipeline(pipeline, schedules).total_ms
