"""Numerical interpretation of lowered loop nests.

Where :mod:`repro.sim.trace` asks "which cache lines does this schedule
touch?", this module asks the stronger question: **does the scheduled nest
compute the same values as the unscheduled algorithm?**  ``execute`` walks
a lowered :class:`~repro.ir.loopnest.LoopNest` and evaluates its statement
on real numpy arrays — vectorized over the innermost loop, so it is fast
enough to run real (small) problems in tests.

The interpreter honors everything lowering produces: index-reconstruction
trees (splits/fusions), guards from imperfect splits, update-in-place
semantics of self-referencing statements, and multi-stage pipelines whose
later stages read earlier stages' outputs.

This is the reproduction's substitute for Halide's correctness story
(schedules cannot change results there by construction); here the
property-based tests drive random schedules through ``execute`` and
compare against the reference loop order bit-for-bit (element order of
float reductions is preserved because the reduction loop's iteration
*sequence* over each output point is unchanged by tiling — only the
interleaving between output points changes).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.ir.expr import Access, BinOp, Cast, Const, Expr, VarRef
from repro.ir.func import Buffer, Func, Pipeline
from repro.ir.loopnest import LoopNest
from repro.ir.lower import lower, lower_pipeline
from repro.ir.schedule import Schedule
from repro.sim.trace import _eval_index_tree
from repro.util import SimulationError

_NUMPY_DTYPES = {
    "float32": np.float32,
    "float64": np.float64,
    "int32": np.int64,   # evaluate integer math wide, cast on store
    "int64": np.int64,
    "uint16": np.int64,
    "uint8": np.int64,
}


class BufferStore:
    """Backing storage: one numpy array per Buffer / Func output."""

    def __init__(self) -> None:
        self._arrays: Dict[int, np.ndarray] = {}

    def bind(self, buffer, array: np.ndarray) -> None:
        """Attach an existing array (inputs)."""
        if tuple(array.shape) != tuple(buffer.shape):
            raise SimulationError(
                f"array shape {array.shape} does not match buffer "
                f"{buffer.name!r} shape {buffer.shape}"
            )
        self._arrays[id(buffer)] = array

    def materialize(self, buffer) -> np.ndarray:
        """Return (allocating zeros on first use) the array of a buffer."""
        key = id(buffer)
        if key not in self._arrays:
            np_dtype = _NUMPY_DTYPES.get(buffer.dtype.name, np.float64)
            self._arrays[key] = np.zeros(buffer.shape, dtype=np_dtype)
        return self._arrays[key]

    def array_of(self, buffer) -> np.ndarray:
        key = id(buffer)
        if key not in self._arrays:
            raise KeyError(f"no array bound for {buffer.name!r}")
        return self._arrays[key]


def _eval_expr(expr: Expr, values: Dict[str, object], store: BufferStore):
    """Evaluate an expression over scalar/ndarray variable values."""
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, VarRef):
        return values[expr.name]
    if isinstance(expr, Cast):
        return _eval_expr(expr.value, values, store)
    if isinstance(expr, Access):
        array = store.materialize(expr.buffer)
        index = tuple(
            _eval_expr(ix, values, store) for ix in expr.indices
        )
        return array[index]
    if isinstance(expr, BinOp):
        lhs = _eval_expr(expr.lhs, values, store)
        rhs = _eval_expr(expr.rhs, values, store)
        if expr.op == "+":
            return lhs + rhs
        if expr.op == "-":
            return lhs - rhs
        if expr.op == "*":
            return lhs * rhs
        if expr.op == "/":
            return lhs / rhs
        if expr.op == "&":
            return np.bitwise_and(lhs, rhs)
        if expr.op == "|":
            return np.bitwise_or(lhs, rhs)
        if expr.op == "min":
            return np.minimum(lhs, rhs)
        if expr.op == "max":
            return np.maximum(lhs, rhs)
    raise SimulationError(f"cannot interpret expression {expr!r}")


def execute_nest(nest: LoopNest, store: BufferStore) -> np.ndarray:
    """Execute one lowered nest; returns the (mutated) output array.

    The innermost loop is evaluated with numpy in one shot **only when the
    statement is safe to vectorize over it** — i.e. the store never reads
    its own output at indices that the same innermost-loop sweep writes
    with a different alignment.  Self-referencing statements where the
    read and write indices coincide element-wise (the common accumulation
    ``C[i,j] = C[i,j] + ...``) are safe and handled vectorized.
    """
    out = store.materialize(nest.func)
    loops = nest.loops
    stmt = nest.stmt
    trees = stmt.index_trees
    guards = stmt.guards
    bounds = {v: nest.func.bound_of(v) for v in trees}

    if not loops:
        values = {v: _eval_index_tree(t, {}) for v, t in trees.items()}
        _store_one(nest, store, values)
        return out

    inner = loops[-1]
    inner_values = np.arange(inner.extent, dtype=np.int64)
    env: Dict[str, object] = {}

    def leaf() -> None:
        local = dict(env)
        local[inner.name] = inner_values
        values = {v: _eval_index_tree(t, local) for v, t in trees.items()}
        mask: Optional[np.ndarray] = None
        for var, bound in guards.items():
            cond = values[var] < bound
            if isinstance(cond, np.ndarray):
                mask = cond if mask is None else (mask & cond)
            elif not cond:
                return
        if mask is not None:
            # Drop guarded-out iterations *before* evaluating the rhs, so
            # no out-of-bounds element is ever read (GuardWithIf).
            if not mask.any():
                return
            values = {
                v: (val[mask] if isinstance(val, np.ndarray) else val)
                for v, val in values.items()
            }
        _store_vectorized(nest, store, values, None)

    def walk(depth: int) -> None:
        if depth == len(loops) - 1:
            leaf()
            return
        loop = loops[depth]
        for v in range(loop.extent):
            env[loop.name] = v
            walk(depth + 1)

    walk(0)
    return out


def _store_vectorized(nest, store, values, mask) -> None:
    stmt = nest.stmt
    result = _eval_expr(stmt.rhs, values, store)
    out = store.materialize(nest.func)
    index = tuple(_eval_expr(ix, values, store) for ix in stmt.store.indices)
    index_is_scalar = not any(isinstance(ix, np.ndarray) for ix in index)

    if index_is_scalar and isinstance(result, np.ndarray):
        # The innermost loop is a reduction dimension: all iterations
        # target one output element.
        if mask is not None:
            result = result[mask]
            if result.size == 0:
                return
        scalar_index = tuple(int(ix) for ix in index)
        if _self_reads_store_index(stmt):
            # rhs = out[idx] (+ per-iteration terms): each vector lane
            # holds "current + term_i"; fold the terms.
            current = out[scalar_index]
            out[scalar_index] = current + np.add.reduce(result - current)
        else:
            # Overwrite semantics: the last iteration wins.
            out[scalar_index] = result[-1]
        return

    if mask is not None:
        index = tuple(
            ix[mask] if isinstance(ix, np.ndarray) else ix for ix in index
        )
        if isinstance(result, np.ndarray):
            result = result[mask]
    out[index] = result


def _self_reads_store_index(stmt) -> bool:
    """True when the rhs reads the output at exactly the store indices
    (the accumulation pattern ``C[i,j] = C[i,j] + ...``)."""
    for acc in stmt.rhs.accesses():
        if acc.buffer is stmt.store.buffer and acc.indices == stmt.store.indices:
            return True
    return False


def _store_one(nest, store, values) -> None:
    stmt = nest.stmt
    result = _eval_expr(stmt.rhs, values, store)
    out = store.materialize(nest.func)
    index = tuple(int(_eval_expr(ix, values, store)) for ix in stmt.store.indices)
    out[index] = result


def execute(
    func: Func,
    schedule: Optional[Schedule] = None,
    inputs: Optional[Dict[Buffer, np.ndarray]] = None,
    *,
    store: Optional[BufferStore] = None,
) -> np.ndarray:
    """Run every definition of ``func`` under ``schedule``; return the
    output array.

    ``inputs`` binds numpy arrays to input buffers; unbound buffers are
    zero-filled.  Pass an explicit ``store`` to share stage outputs when
    interpreting pipelines by hand.
    """
    store = store or BufferStore()
    for buffer, array in (inputs or {}).items():
        store.bind(buffer, array)
    result = None
    for nest in lower(func, schedule):
        result = execute_nest(nest, store)
    return result


def execute_pipeline(
    pipeline: Pipeline,
    schedules: Optional[Dict[Func, Schedule]] = None,
    inputs: Optional[Dict[Buffer, np.ndarray]] = None,
) -> np.ndarray:
    """Interpret a whole pipeline stage by stage; return the final output."""
    store = BufferStore()
    for buffer, array in (inputs or {}).items():
        store.bind(buffer, array)
    result = None
    for nest in lower_pipeline(pipeline, schedules):
        result = execute_nest(nest, store)
    return result
