"""Convert simulated cache counters into execution time.

The model is a roofline-flavored combination of four components, each
extrapolated from the sampled window by the nest's scale factor:

* **issue**: ``stmts * (ops + addr_ops) * cpi`` divided by the effective
  vector lanes when the innermost statement is vectorized.  Lanes are
  discounted by a vector efficiency and by the fraction of references that
  are contiguous along the vectorized variable (strided vector accesses
  behave like gathers).
* **loop overhead**: a couple of cycles per loop iteration at every level
  (what tiling pays for; the paper's reason to fuse outer tile loops).
* **memory latency**: hits below L1 cost their level's latency, divided by
  a memory-level-parallelism factor (out-of-order cores overlap misses).
  Lines that the prefetchers moved up the hierarchy are naturally charged
  at the cheaper level — exactly the effect the paper's model exploits.
* **DRAM bandwidth**: every DRAM line transfer (demand + prefetch + NT
  stores + write-backs) consumes bus bytes; the chip-wide bandwidth is a
  floor on execution time, shared by all cores.  This is what makes the
  benchmarks *memory-bound* and what NT stores relieve.

A parallel loop divides the core-side time by the usable thread count
(capped by the loop's trip count — Eq. 13's motivation) times an
efficiency; the bandwidth floor is not divided, because DRAM is shared.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.arch import ArchSpec
from repro.ir.analysis import StatementInfo, analyze_definition
from repro.ir.loopnest import LoopNest
from repro.ir.schedule import LoopKind
from repro.sim.executor import NestCounters


@dataclass(frozen=True)
class TimingModel:
    """Tunable constants of the cost model (documented defaults)."""

    cpi: float = 0.5                  # superscalar: ~2 scalar ops / cycle
    addr_ops: float = 2.0             # per-statement addressing overhead
    loop_overhead_cycles: float = 2.0  # per loop iteration, per level
    mlp: float = 8.0                  # overlapped outstanding misses (~10
                                      # line-fill buffers on modern cores)
    #: Chip-wide DRAM bandwidth override; None -> the platform's own
    #: ``bw_bytes_per_cycle`` (the normal case).
    bw_bytes_per_cycle: Optional[float] = None
    parallel_efficiency: float = 0.85
    vector_efficiency: float = 0.8
    smt_bonus: float = 0.25           # extra throughput per SMT sibling
    #: Fraction of the *full* memory latency a *late* prefetch hit still
    #: exposes (multi-stream model only; ``late_pf_hits`` is 0 under the
    #: legacy prefetcher model, making this term an exact no-op there).
    #: Late hits are NOT divided by ``mlp``: they stall on consecutive
    #: lines of the same in-order stream, which is precisely the traffic
    #: out-of-order overlap cannot parallelize — the fraction already
    #: accounts for what little overlap remains.
    late_prefetch_fraction: float = 0.3

    def bandwidth(self, arch: ArchSpec) -> float:
        if self.bw_bytes_per_cycle is not None:
            return self.bw_bytes_per_cycle
        return arch.bw_bytes_per_cycle


@dataclass
class NestTime:
    """Cycle breakdown of one nest (already extrapolated)."""

    nest_name: str
    issue_cycles: float
    loop_cycles: float
    latency_cycles: float
    dram_cycles: float
    threads_used: float
    core_cycles: float  # (issue + loop + latency) / parallel speedup
    total_cycles: float  # max(core_cycles, dram_cycles)

    def breakdown(self) -> Dict[str, float]:
        return {
            "issue": self.issue_cycles,
            "loop": self.loop_cycles,
            "latency": self.latency_cycles,
            "dram": self.dram_cycles,
            "core": self.core_cycles,
            "total": self.total_cycles,
        }


def _vector_lanes(nest: LoopNest, arch: ArchSpec) -> float:
    """Effective lanes for the nest's vectorized loop, if any."""
    vec = nest.vectorized_loops()
    if not vec:
        return 1.0
    loop = vec[0]
    dts = nest.func.dtype.size
    lanes = arch.vector_lanes(dts)
    if lanes <= 1:
        return 1.0
    # Which original variable does the vectorized loop iterate?
    origins = [o for o in loop.origin.split("+") if o]
    info = analyze_definition(nest.func, nest.definition)
    refs = [info.output] + info.inputs
    contiguous = 0
    affected = 0
    for ref in refs:
        strides = [ref.stride_of(o) for o in origins]
        if all(s == 0 for s in strides):
            continue
        affected += 1
        if any(abs(s) == 1 for s in strides):
            contiguous += 1
    frac = (contiguous / affected) if affected else 1.0
    model_lanes = 1.0 + (lanes - 1) * frac
    return max(1.0, model_lanes)


def _loop_iterations(nest: LoopNest) -> float:
    """Total loop iterations across all levels (full, not sampled)."""
    total = 0.0
    prod = 1.0
    for loop in nest.loops:
        prod *= loop.extent
        if loop.kind is LoopKind.VECTORIZED:
            # One wide iteration covers ~a SIMD register of elements.
            total += prod / 8.0
        elif loop.kind is LoopKind.UNROLLED:
            total += prod * 0.25
        else:
            total += prod
    return total


def _threads_used(nest: LoopNest, arch: ArchSpec, model: TimingModel) -> float:
    par = nest.parallel_loops()
    if not par:
        return 1.0
    trip = par[0].extent
    cores = min(arch.n_cores, trip)
    smt_extra = 0.0
    if trip > arch.n_cores and arch.threads_per_core > 1:
        smt_extra = model.smt_bonus * (arch.threads_per_core - 1) * cores
    return max(1.0, cores + smt_extra)


def time_nest(
    counters: NestCounters,
    arch: ArchSpec,
    model: Optional[TimingModel] = None,
) -> NestTime:
    """Extrapolate one nest's counters to a full-nest cycle estimate."""
    model = model or TimingModel()
    nest = counters.nest
    scale = counters.scale
    info_ops = nest.stmt.ops

    lanes = _vector_lanes(nest, arch)
    stmts = counters.total_stmts  # full iteration space (guarded)
    issue = stmts * (info_ops + model.addr_ops) * model.cpi / lanes

    loop_cycles = _loop_iterations(nest) * model.loop_overhead_cycles

    a2 = arch.access_cost(2)
    a3 = arch.access_cost(3)
    amem = arch.access_cost(4)
    latency = (
        counters.scaled("l2_hits") * a2
        + counters.scaled("l3_hits") * a3
        + counters.scaled("mem_lines") * amem
    ) / model.mlp
    # NT stores stream through write-combining buffers: near-free at
    # issue, a small per-line drain cost.
    latency += counters.scaled("nt_lines") * 0.25
    # Late prefetch hits (multi-stream model): the line was found in cache
    # but its prefetch had not landed yet, so part of the memory latency
    # is still exposed — serialized along the stream, hence no mlp
    # division (see TimingModel.late_prefetch_fraction).  Exactly zero
    # under the legacy prefetcher model.
    latency += (
        counters.scaled("late_pf_hits")
        * model.late_prefetch_fraction
        * amem
    )

    line_size = arch.l1.line_size
    dram_lines = (
        counters.scaled("mem_lines")
        + counters.scaled("prefetch_mem_lines")
        + counters.scaled("nt_lines")
        + counters.scaled("writeback_lines")
    )
    dram_cycles = dram_lines * line_size / model.bandwidth(arch)

    threads = _threads_used(nest, arch, model)
    speedup = threads * model.parallel_efficiency if threads > 1 else 1.0
    core_cycles = (issue + loop_cycles + latency) / speedup
    total = max(core_cycles, dram_cycles)
    return NestTime(
        nest_name=nest.name,
        issue_cycles=issue,
        loop_cycles=loop_cycles,
        latency_cycles=latency,
        dram_cycles=dram_cycles,
        threads_used=threads,
        core_cycles=core_cycles,
        total_cycles=total,
    )


def total_time_ms(
    all_counters: Sequence[NestCounters],
    arch: ArchSpec,
    model: Optional[TimingModel] = None,
) -> float:
    """Milliseconds for a whole pipeline: nests run back to back."""
    model = model or TimingModel()
    cycles = sum(
        time_nest(c, arch, model).total_cycles for c in all_counters
    )
    return cycles / (arch.freq_ghz * 1e6)
