"""Line-granular memory-trace generation from lowered loop nests.

The generator walks the scheduled loops recursively; the **innermost** loop
is evaluated with numpy in one shot, so each visit of the innermost level
("leaf block") costs a handful of vectorized operations regardless of its
extent.  For every array reference the affine index expressions collapse to

    element = sum_v coeff_v * value(v) + const

with per-variable coefficients precomputed in *elements*; byte addresses are
then divided by the line size and consecutive duplicates are dropped (a row
of contiguous elements becomes one access per line, which is also the
granularity the hardware prefetchers see).

Sampling: emission stops once ``line_budget`` lines have been produced; the
fraction of statement executions covered is reported so the executor can
extrapolate.  The window is a prefix of the iteration space — the same
steady state a real measurement warms into, minus the (negligible at these
trip counts) tail effects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.ir.analysis import AffineIndex
from repro.ir.expr import Access
from repro.ir.func import Buffer, Func
from repro.ir.loopnest import LoopNest
from repro.ir.schedule import (
    FusedInner,
    FusedOuter,
    IndexNode,
    LeafIndex,
    SplitIndex,
)
from repro.util import SimulationError

#: Alignment of buffer base addresses (a page), so that conflict behaviour
#: resembles malloc'd arrays rather than adversarial placements.
_BASE_ALIGN = 4096
#: Extra pad between buffers, in bytes, to decorrelate set mappings a bit.
_BASE_PAD = 64 * 7


class MemoryLayout:
    """Assigns base byte addresses to buffers and Func outputs.

    Buffers are laid out in first-touch order, page-aligned, with a small
    odd pad between them.  The layout is deterministic for a given
    registration order, which keeps simulations reproducible.
    """

    def __init__(self) -> None:
        self._bases: Dict[int, int] = {}
        self._names: Dict[int, str] = {}
        self._next = _BASE_ALIGN

    def register(self, buffer) -> int:
        """Assign (or return) the base byte address of a buffer/Func."""
        key = id(buffer)
        if key in self._bases:
            return self._bases[key]
        base = self._next
        self._bases[key] = base
        self._names[key] = buffer.name
        size = buffer.size_bytes
        self._next = (
            (base + size + _BASE_PAD + _BASE_ALIGN - 1) // _BASE_ALIGN
        ) * _BASE_ALIGN
        return base

    def base_of(self, buffer) -> int:
        key = id(buffer)
        if key not in self._bases:
            raise KeyError(f"buffer {buffer.name!r} was never registered")
        return self._bases[key]

    def total_bytes(self) -> int:
        return self._next

    def describe(self) -> str:
        rows = [
            f"  {self._names[k]} @ {base:#x}"
            for k, base in sorted(self._bases.items(), key=lambda kv: kv[1])
        ]
        return "layout:\n" + "\n".join(rows)


def _eval_index_tree(tree: IndexNode, env: Dict[str, object]):
    """Evaluate an index-reconstruction tree over scalars/ndarrays."""
    if isinstance(tree, LeafIndex):
        return env[tree.loop]
    if isinstance(tree, SplitIndex):
        return (
            _eval_index_tree(tree.outer, env) * tree.factor
            + _eval_index_tree(tree.inner, env)
        )
    if isinstance(tree, FusedOuter):
        return _eval_index_tree(tree.fused, env) // tree.inner_extent
    if isinstance(tree, FusedInner):
        return _eval_index_tree(tree.fused, env) % tree.inner_extent
    raise SimulationError(f"unknown index node {tree!r}")


@dataclass
class _RefPlan:
    """Precomputed address recipe for one array reference."""

    ref_id: int
    is_store: bool
    nontemporal: bool
    #: original variable name -> combined element coefficient
    var_coeffs: Tuple[Tuple[str, int], ...]
    const_elements: int
    base_bytes: int
    dtype_size: int

    def element_index(self, var_values: Dict[str, object]):
        total = self.const_elements
        for var, coeff in self.var_coeffs:
            total = total + var_values[var] * coeff
        return total


@dataclass
class TraceChunk:
    """One batch of line accesses belonging to a single reference stream."""

    lines: np.ndarray
    ref_id: int
    is_store: bool
    nontemporal: bool


@dataclass
class NestTrace:
    """Per-nest bookkeeping of what the generator actually emitted."""

    nest: LoopNest
    simulated_stmts: int = 0
    total_stmts: int = 0
    emitted_lines: int = 0
    truncated: bool = False

    @property
    def scale(self) -> float:
        """Extrapolation factor from the simulated window to the full nest."""
        if self.simulated_stmts <= 0:
            return 1.0
        return max(1.0, self.total_stmts / self.simulated_stmts)


class TraceGenerator:
    """Generates line-granular access chunks for one loop nest."""

    def __init__(
        self,
        nest: LoopNest,
        layout: MemoryLayout,
        line_size: int,
        *,
        line_budget: int = 200_000,
        phase: float = 0.0,
    ) -> None:
        if not 0.0 <= phase < 1.0:
            raise ValueError(f"phase must be in [0, 1), got {phase}")
        self.nest = nest
        self.layout = layout
        self.line_size = line_size
        self.line_budget = line_budget
        #: Fraction of the iteration space to skip before emitting: a
        #: second window at phase 0.5 exposes behaviour (cold capacity
        #: misses at long reuse distances) a start-anchored window never
        #: reaches.
        self.phase = phase
        self.record = NestTrace(nest=nest, total_stmts=self._guarded_total())
        self._plans = self._build_plans()
        self._guards = nest.stmt.guards
        self._trees = nest.stmt.index_trees

    # ------------------------------------------------------------------

    def _guarded_total(self) -> int:
        total = 1
        for var in self.nest.definition.all_vars():
            total *= self.nest.func.bound_of(var.name)
        return total

    def _build_plans(self) -> List[_RefPlan]:
        plans: List[_RefPlan] = []
        stmt = self.nest.stmt
        refs: List[Tuple[Access, bool]] = [(acc, False) for acc in stmt.reads]
        refs.append((stmt.store, True))
        for ref_id, (acc, is_store) in enumerate(refs):
            buffer = acc.buffer
            base = self.layout.register(buffer)
            strides = buffer.strides_elements()
            var_coeffs: Dict[str, int] = {}
            const = 0
            for dim, ix_expr in enumerate(acc.indices):
                affine = AffineIndex.from_expr(ix_expr)
                const += affine.offset * strides[dim]
                for var, coeff in affine.coeffs:
                    var_coeffs[var] = var_coeffs.get(var, 0) + coeff * strides[dim]
            plans.append(
                _RefPlan(
                    ref_id=ref_id,
                    is_store=is_store,
                    nontemporal=is_store and stmt.nontemporal,
                    var_coeffs=tuple(sorted(var_coeffs.items())),
                    const_elements=const,
                    base_bytes=base,
                    dtype_size=buffer.dtype.size,
                )
            )
        return plans

    # ------------------------------------------------------------------

    def chunks(self) -> Iterator[TraceChunk]:
        """Yield access chunks until the nest ends or the budget is hit."""
        loops = self.nest.loops
        if not loops:
            yield from self._leaf({}, np.zeros(1, dtype=np.int64), None)
            return
        outer = loops[:-1]
        inner = loops[-1]
        inner_values = np.arange(inner.extent, dtype=np.int64)
        env: Dict[str, object] = {}

        phase = self.phase

        def walk(depth: int, on_start_path: bool) -> Iterator[TraceChunk]:
            if self.record.emitted_lines >= self.line_budget:
                self.record.truncated = True
                return
            if depth == len(outer):
                yield from self._leaf(env, inner_values, inner.name)
                return
            loop = outer[depth]
            start = int(loop.extent * phase) if on_start_path else 0
            for value in range(start, loop.extent):
                if self.record.emitted_lines >= self.line_budget:
                    self.record.truncated = True
                    return
                env[loop.name] = value
                yield from walk(depth + 1, on_start_path and value == start)

        yield from walk(0, True)
        if phase > 0.0 and not self.record.truncated:
            # A phased window that ran off the end of the space covered
            # only the tail; flag it so callers know coverage is partial.
            self.record.truncated = True

    def _leaf(
        self,
        env: Dict[str, object],
        inner_values: np.ndarray,
        inner_name: Optional[str],
    ) -> Iterator[TraceChunk]:
        local = dict(env)
        if inner_name is not None:
            local[inner_name] = inner_values
        # Original variable values (scalar or vector).
        var_values: Dict[str, object] = {}
        for orig, tree in self._trees.items():
            var_values[orig] = _eval_index_tree(tree, local)
        # Guard mask for imperfect splits.
        mask = None
        for orig, bound in self._guards.items():
            cond = var_values[orig] < bound
            mask = cond if mask is None else (mask & cond)
        if mask is not None and not np.any(mask):
            return
        n_inner = len(inner_values)
        if mask is None:
            live = n_inner
        elif isinstance(mask, np.ndarray):
            live = int(np.count_nonzero(mask))
        else:  # scalar guard over outer vars only
            live = n_inner if mask else 0
            if live == 0:
                return
            mask = None
        self.record.simulated_stmts += live

        for plan in self._plans:
            elem = plan.element_index(var_values)
            if not isinstance(elem, np.ndarray):
                elem = np.full(1, elem, dtype=np.int64)
                ref_mask = None
            else:
                ref_mask = mask if isinstance(mask, np.ndarray) else None
            if ref_mask is not None:
                elem = elem[ref_mask]
                if elem.size == 0:
                    continue
            lines = (plan.base_bytes + elem * plan.dtype_size) // self.line_size
            if lines.size > 1:
                keep = np.empty(lines.size, dtype=bool)
                keep[0] = True
                np.not_equal(lines[1:], lines[:-1], out=keep[1:])
                lines = lines[keep]
            self.record.emitted_lines += int(lines.size)
            yield TraceChunk(
                lines=lines,
                ref_id=plan.ref_id,
                is_store=plan.is_store,
                nontemporal=plan.nontemporal,
            )
