"""``python -m repro.bench`` — the search-performance harness CLI.

Measure::

    python -m repro.bench                  # full Table 4 suite
    python -m repro.bench --fast           # CI subset, small sizes
    python -m repro.bench --out BENCH_search.json

Gate (CI)::

    python -m repro.bench --fast --check --baseline BENCH_search.json

``--check`` exits 1 when a gated ratio (warm / cold-parallel speedup)
falls more than ``--tolerance`` (default 20%) below the committed
baseline, or when the scenarios stop producing identical schedules.
Absolute milliseconds are recorded but never gated — they are machine
properties, the ratios are code properties.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.arch import platform_by_name
from repro.bench.perf import check_regression, run_bench, write_payload


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Time the optimizer's search machinery (Table 4 suite)",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="CI subset with small problem sizes (seconds, not minutes)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=4,
        metavar="N",
        help="worker processes for the parallel scenarios (default 4)",
    )
    parser.add_argument(
        "--platform",
        default="i7-5930k",
        help="platform name (default i7-5930k)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the JSON payload to PATH (default: stdout only)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against --baseline and exit 1 on regression",
    )
    parser.add_argument(
        "--baseline",
        default="BENCH_search.json",
        metavar="PATH",
        help="baseline payload for --check (default BENCH_search.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        metavar="FRAC",
        help="allowed one-sided ratio regression for --check (default 0.2)",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    arch = platform_by_name(args.platform)
    payload = run_bench(fast=args.fast, jobs=args.jobs, arch=arch)

    e2e = payload["end_to_end"]
    print(
        f"bench[{payload['mode']}] {len(payload['benchmarks'])} benchmarks, "
        f"{e2e['stages']} stages on {payload['arch']}:"
    )
    print(
        f"  serial uncached {e2e['serial_uncached_ms']:.0f} ms | "
        f"cold --jobs {payload['jobs']} {e2e['cold_parallel_ms']:.0f} ms "
        f"({e2e['speedup_cold_parallel']:.2f}x) | "
        f"warm {e2e['warm_ms']:.0f} ms ({e2e['speedup_warm']:.2f}x)"
    )
    print(
        f"  emu cache: {payload['emu_cache']['hits']} hits / "
        f"{payload['emu_cache']['misses']} misses "
        f"(rate {payload['emu_cache']['hit_rate']:.1%}); "
        f"schedules identical: {e2e['schedules_identical']}"
    )

    if args.out:
        write_payload(payload, args.out)
        print(f"  wrote {args.out}")

    if args.check:
        try:
            with open(args.baseline, "r", encoding="utf-8") as handle:
                baseline = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"bench --check: cannot read baseline: {exc}", file=sys.stderr)
            return 1
        failures = check_regression(
            payload, baseline, tolerance=args.tolerance
        )
        if failures:
            for failure in failures:
                print(f"bench --check FAIL: {failure}", file=sys.stderr)
            return 1
        print(f"  check vs {args.baseline}: OK (±{args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
