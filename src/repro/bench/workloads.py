"""Problem sizes: the paper's (Table 4) and scaled-down test sizes.

The simulator samples traces, so the paper sizes are runnable; the small
sizes exist for unit tests and quick sanity experiments where full
iteration spaces would only add sampling noise, not information.
"""

from __future__ import annotations

from typing import Dict

#: Table 4 problem sizes, keyed by benchmark name.
PAPER_SIZES: Dict[str, dict] = {
    "convlayer": {"width": 256, "height": 256, "channels": 64, "filters": 64,
                  "batch": 16, "ksize": 3},
    "doitgen": {"n": 256},
    "matmul": {"n": 2048},
    "3mm": {"n": 2048},
    "gemm": {"n": 2048},
    "trmm": {"n": 2048},
    "syrk": {"n": 2048},
    "syr2k": {"n": 2048},
    "tpm": {"n": 4096},
    "tp": {"n": 4096},
    "copy": {"n": 4096},
    "mask": {"n": 4096},
}

#: Fast sizes for unit tests: same shapes, two orders of magnitude less work.
SMALL_SIZES: Dict[str, dict] = {
    "convlayer": {"width": 32, "height": 32, "channels": 8, "filters": 8,
                  "batch": 2, "ksize": 3},
    "doitgen": {"n": 32},
    "matmul": {"n": 256},
    "3mm": {"n": 128},
    "gemm": {"n": 256},
    "trmm": {"n": 256},
    "syrk": {"n": 256},
    "syr2k": {"n": 256},
    "tpm": {"n": 512},
    "tp": {"n": 512},
    "copy": {"n": 512},
    "mask": {"n": 512},
}


def size_for(name: str, *, small: bool = False) -> dict:
    """Problem-size kwargs for a benchmark factory."""
    table = SMALL_SIZES if small else PAPER_SIZES
    if name not in table:
        raise KeyError(f"unknown benchmark {name!r}; known: {sorted(table)}")
    return dict(table[name])
