"""The twelve benchmarks of the paper's Table 4, as DSL pipelines.

Each ``make_*`` factory returns a fresh :class:`BenchmarkCase` (Funcs are
mutable, so sharing instances across experiments would leak schedules).
Index conventions follow the paper's C listings: the **last** index of
every access is the contiguous dimension.

Expected classifier outcomes (asserted by the test suite):

=============  ==========  ====
benchmark      locality    NTI
=============  ==========  ====
convlayer      temporal    no   (accumulating output)
doitgen        temporal    no/yes per stage
matmul/3mm     temporal    no
gemm           temporal    no
trmm           temporal    no
syrk/syr2k     temporal    no
tpm, tp        spatial     yes
copy, mask     none        yes
=============  ==========  ====

Deviations from PolyBench documented here:

* **trmm** is rectangularized: the DSL has no triangular iteration domains
  (neither does Halide, which the paper used), so the access *pattern*
  matches matmul and only the op count differs by a constant factor.
* **doitgen**'s copy-back stage writes to a separate output array instead
  of in-place over ``A`` (no aliasing analysis in the simulator); traffic
  is identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.ir.func import Buffer, Func, Pipeline, Var, RVar, float32, int32


@dataclass
class BenchmarkCase:
    """One runnable benchmark: a pipeline plus metadata."""

    name: str
    description: str
    pipeline: Pipeline
    problem_size: str

    @property
    def funcs(self) -> List[Func]:
        return list(self.pipeline)

    @property
    def output(self) -> Func:
        return self.pipeline.output

    def __repr__(self) -> str:
        return f"BenchmarkCase({self.name}, {self.problem_size})"


# ---------------------------------------------------------------------------
# Linear-algebra kernels (temporal reuse)
# ---------------------------------------------------------------------------


def _matmul_func(
    name: str, a: Buffer, b: Buffer, n: int, suffix: str = ""
) -> Func:
    i = Var(f"i{suffix}")
    j = Var(f"j{suffix}")
    k = RVar(f"k{suffix}", n)
    c = Func(name)
    c[i, j] = 0.0
    c[i, j] = c[i, j] + a[i, k] * b[k, j]
    c.set_bounds({i: n, j: n})
    return c


def make_matmul(n: int = 2048) -> BenchmarkCase:
    """Matrix multiplication ``C = A @ B`` (Table 4: 2048x2048)."""
    a = Buffer("A", (n, n), float32)
    b = Buffer("B", (n, n), float32)
    c = _matmul_func("C", a, b, n)
    return BenchmarkCase(
        name="matmul",
        description="Matrix Multiplication",
        pipeline=Pipeline([c]),
        problem_size=f"{n}x{n}",
    )


def make_gemm(n: int = 2048, alpha: float = 1.5, beta: float = 1.2) -> BenchmarkCase:
    """Generalized matrix-matrix multiply ``C = alpha*A@B + beta*C``."""
    a = Buffer("A", (n, n), float32)
    b = Buffer("B", (n, n), float32)
    c_in = Buffer("Cin", (n, n), float32)
    i, j = Var("i"), Var("j")
    k = RVar("k", n)
    c = Func("C")
    c[i, j] = beta * c_in[i, j]
    c[i, j] = c[i, j] + alpha * a[i, k] * b[k, j]
    c.set_bounds({i: n, j: n})
    return BenchmarkCase(
        name="gemm",
        description="Generalized Matrix Matrix Multiplication",
        pipeline=Pipeline([c]),
        problem_size=f"{n}x{n}",
    )


def make_trmm(n: int = 2048) -> BenchmarkCase:
    """Triangular matrix multiply, rectangularized (see module docstring)."""
    a = Buffer("A", (n, n), float32)
    b_in = Buffer("Bin", (n, n), float32)
    i, j = Var("i"), Var("j")
    k = RVar("k", n)
    b = Func("B")
    b[i, j] = b_in[i, j]
    b[i, j] = b[i, j] + a[i, k] * b_in[k, j]
    b.set_bounds({i: n, j: n})
    return BenchmarkCase(
        name="trmm",
        description="In-place Triangular Matrix Matrix Multiplication",
        pipeline=Pipeline([b]),
        problem_size=f"{n}x{n}",
    )


def make_syrk(n: int = 2048, alpha: float = 1.5) -> BenchmarkCase:
    """Symmetric rank-k update ``C = alpha*A@A^T + C``."""
    a = Buffer("A", (n, n), float32)
    c_in = Buffer("Cin", (n, n), float32)
    i, j = Var("i"), Var("j")
    k = RVar("k", n)
    c = Func("C")
    c[i, j] = c_in[i, j]
    c[i, j] = c[i, j] + alpha * a[i, k] * a[j, k]
    c.set_bounds({i: n, j: n})
    return BenchmarkCase(
        name="syrk",
        description="Symmetric rank k update",
        pipeline=Pipeline([c]),
        problem_size=f"{n}x{n}",
    )


def make_syr2k(n: int = 2048, alpha: float = 1.5) -> BenchmarkCase:
    """Symmetric rank-2k update ``C = alpha*(A@B^T + B@A^T) + C``."""
    a = Buffer("A", (n, n), float32)
    b = Buffer("B", (n, n), float32)
    c_in = Buffer("Cin", (n, n), float32)
    i, j = Var("i"), Var("j")
    k = RVar("k", n)
    c = Func("C")
    c[i, j] = c_in[i, j]
    c[i, j] = c[i, j] + alpha * a[i, k] * b[j, k] + alpha * b[i, k] * a[j, k]
    c.set_bounds({i: n, j: n})
    return BenchmarkCase(
        name="syr2k",
        description="Symmetric rank 2k update",
        pipeline=Pipeline([c]),
        problem_size=f"{n}x{n}",
    )


def make_3mm(n: int = 2048) -> BenchmarkCase:
    """Three chained matrix multiplications ``G = (A@B) @ (C@D)``."""
    a = Buffer("A", (n, n), float32)
    b = Buffer("B", (n, n), float32)
    c = Buffer("Cm", (n, n), float32)
    d = Buffer("D", (n, n), float32)
    e = _matmul_func("E", a, b, n, suffix="1")
    f = _matmul_func("F", c, d, n, suffix="2")
    i, j = Var("i3"), Var("j3")
    k = RVar("k3", n)
    g = Func("G")
    g[i, j] = 0.0
    g[i, j] = g[i, j] + e[i, k] * f[k, j]
    g.set_bounds({i: n, j: n})
    return BenchmarkCase(
        name="3mm",
        description="Linear Algebra Kernel - three matrix multiplications",
        pipeline=Pipeline([e, f, g], name="3mm"),
        problem_size=f"{n}x{n}",
    )


def make_doitgen(n: int = 256) -> BenchmarkCase:
    """PolyBench doitgen: multiresolution analysis kernel (256^3)."""
    a = Buffer("A", (n, n, n), float32)
    c4 = Buffer("C4", (n, n), float32)
    r, q, p = Var("r"), Var("q"), Var("p")
    s = RVar("s", n)
    acc = Func("Sum")
    acc[r, q, p] = 0.0
    acc[r, q, p] = acc[r, q, p] + a[r, q, s] * c4[s, p]
    acc.set_bounds({r: n, q: n, p: n})
    out = Func("Aout")
    out[r, q, p] = acc[r, q, p]
    out.set_bounds({r: n, q: n, p: n})
    return BenchmarkCase(
        name="doitgen",
        description="Multiresolution Analysis Kernel",
        pipeline=Pipeline([acc, out], name="doitgen"),
        problem_size=f"{n}x{n}x{n}",
    )


def make_convlayer(
    width: int = 256,
    height: int = 256,
    channels: int = 64,
    filters: int = 64,
    batch: int = 16,
    ksize: int = 3,
) -> BenchmarkCase:
    """A convolution layer (3x3x64x64 kernel over 256x256x64x16 input)."""
    image = Buffer(
        "In", (batch, channels, height + ksize - 1, width + ksize - 1), float32
    )
    weights = Buffer("W", (filters, channels, ksize, ksize), float32)
    nb, f, y, x = Var("n"), Var("f"), Var("y"), Var("x")
    c = RVar("c", channels)
    ky = RVar("ky", ksize)
    kx = RVar("kx", ksize)
    out = Func("Conv")
    out[nb, f, y, x] = 0.0
    out[nb, f, y, x] = (
        out[nb, f, y, x] + image[nb, c, y + ky, x + kx] * weights[f, c, ky, kx]
    )
    out.set_bounds({nb: batch, f: filters, y: height, x: width})
    return BenchmarkCase(
        name="convlayer",
        description=f"{ksize}x{ksize}x{channels}x{filters} Convolution Layer",
        pipeline=Pipeline([out]),
        problem_size=f"{width}x{height}x{channels}x{batch}",
    )


# ---------------------------------------------------------------------------
# Data-movement kernels (spatial / none)
# ---------------------------------------------------------------------------


def make_transpose_mask(n: int = 4096) -> BenchmarkCase:
    """Matrix transposition and masking: ``out[y][x] = A[x][y] & B[y][x]``."""
    a = Buffer("A", (n, n), int32)
    b = Buffer("B", (n, n), int32)
    x, y = Var("x"), Var("y")
    out = Func("Tpm", int32)
    out[y, x] = a[x, y] & b[y, x]
    out.set_bounds({x: n, y: n})
    return BenchmarkCase(
        name="tpm",
        description="Matrix Transposition and Masking",
        pipeline=Pipeline([out]),
        problem_size=f"{n}x{n}",
    )


def make_transpose(n: int = 4096) -> BenchmarkCase:
    """Matrix transposition: ``out[y][x] = A[x][y]``."""
    a = Buffer("A", (n, n), int32)
    x, y = Var("x"), Var("y")
    out = Func("Tp", int32)
    out[y, x] = a[x, y]
    out.set_bounds({x: n, y: n})
    return BenchmarkCase(
        name="tp",
        description="Matrix Transposition",
        pipeline=Pipeline([out]),
        problem_size=f"{n}x{n}",
    )


def make_copy(n: int = 4096) -> BenchmarkCase:
    """Array copy: ``out[y][x] = A[y][x]``."""
    a = Buffer("A", (n, n), int32)
    x, y = Var("x"), Var("y")
    out = Func("Copy", int32)
    out[y, x] = a[y, x]
    out.set_bounds({x: n, y: n})
    return BenchmarkCase(
        name="copy",
        description="Array Copy",
        pipeline=Pipeline([out]),
        problem_size=f"{n}x{n}",
    )


def make_mask(n: int = 4096) -> BenchmarkCase:
    """Array masking: ``out[y][x] = A[y][x] & B[y][x]``."""
    a = Buffer("A", (n, n), int32)
    b = Buffer("B", (n, n), int32)
    x, y = Var("x"), Var("y")
    out = Func("Mask", int32)
    out[y, x] = a[y, x] & b[y, x]
    out.set_bounds({x: n, y: n})
    return BenchmarkCase(
        name="mask",
        description="Array Mask",
        pipeline=Pipeline([out]),
        problem_size=f"{n}x{n}",
    )


#: Factory registry, keyed by the benchmark names of Table 4.
SUITE: Dict[str, Callable[..., BenchmarkCase]] = {
    "convlayer": make_convlayer,
    "doitgen": make_doitgen,
    "matmul": make_matmul,
    "3mm": make_3mm,
    "gemm": make_gemm,
    "trmm": make_trmm,
    "syrk": make_syrk,
    "syr2k": make_syr2k,
    "tpm": make_transpose_mask,
    "tp": make_transpose,
    "copy": make_copy,
    "mask": make_mask,
}


def benchmark_names() -> List[str]:
    """All benchmark names, in Table 4 order."""
    return list(SUITE)


def make_benchmark(name: str, **kwargs) -> BenchmarkCase:
    """Instantiate a benchmark by name with optional size overrides."""
    if name not in SUITE:
        raise KeyError(f"unknown benchmark {name!r}; known: {sorted(SUITE)}")
    return SUITE[name](**kwargs)
