"""Performance measurement of the optimizer itself (``repro bench``).

The ROADMAP's north star is a system that is fast *as a program*, not
just one that finds fast schedules — so this module times the search
machinery on the Table 4 suite and writes the numbers to
``BENCH_search.json``, the committed baseline behind CI's
``bench-regression`` gate.

Two families of numbers:

* **Phase timings** — classify, raw ``emu`` (Algorithm 1), the temporal
  (Algorithm 2) and spatial (Algorithm 3) searches, each in
  milliseconds summed over the suite.  These trend the cost of the
  building blocks.
* **End-to-end scenarios** — the full ``optimize`` flow over every
  suite stage, three ways:

  - ``serial_uncached`` — ``jobs=1``, emu memoization disabled, no
    schedule cache: the reference path, and the source of the reference
    schedules;
  - ``cold_parallel`` — caches start empty, emu memoization on,
    ``jobs=N``: what a first run on a fresh machine pays;
  - ``warm`` — emu memo hot and every schedule served by a
    :class:`repro.cache.ScheduleCache`: what every later run pays.

  The scenarios must produce **bit-identical schedules**; the harness
  verifies this and records it, and the CI gate fails on regressions of
  the two speedup ratios beyond a tolerance (machine-independent, where
  absolute milliseconds are not).

Determinism note: timings use ``time.perf_counter`` and vary run to
run; the JSON therefore separates ``*_ms`` (informational) from the
``speedup_*`` ratios and the ``schedules_identical`` flag (gated).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.arch import ArchSpec, intel_i7_5930k
from repro.bench.suite import SUITE, make_benchmark
from repro.bench.workloads import size_for
from repro.cache import ScheduleCache, optimize_options
from repro.core.classify import classify
from repro.core.emu import (
    EmuParams,
    clear_emu_cache,
    configure_emu_cache,
    emu,
    emu_cache_stats,
)
from repro.core.optimizer import optimize
from repro.ir.serialize import schedule_to_dict

#: Schema tag of BENCH_search.json; bump on incompatible layout change.
BENCH_FORMAT = "repro-bench-search-v1"

#: Benchmarks whose optimization exercises each search phase.
_TEMPORAL_NAMES = ("matmul", "gemm", "syrk")
_SPATIAL_NAMES = ("tpm", "tp")

#: The fast (CI) subset: one benchmark per search family plus a
#: contiguous one, small problem sizes.
_FAST_NAMES = ("matmul", "syrk", "tpm", "copy")


def _now_ms() -> float:
    return time.perf_counter() * 1000.0


def _suite_cases(fast: bool) -> List[Tuple[str, object]]:
    names = _FAST_NAMES if fast else tuple(SUITE)
    return [
        (name, make_benchmark(name, **size_for(name, small=fast)))
        for name in names
    ]


def _time_call(fn: Callable[[], object]) -> float:
    start = _now_ms()
    fn()
    return _now_ms() - start


def _phase_timings(cases, arch: ArchSpec, fast: bool) -> Dict[str, float]:
    """Per-phase milliseconds, summed over the suite (memo disabled so
    the numbers mean 'one honest evaluation', not 'one dict lookup')."""
    from repro.core.spatial import optimize_spatial
    from repro.core.temporal import optimize_temporal

    previous = configure_emu_cache(False)
    clear_emu_cache()
    try:
        classify_ms = 0.0
        for _, case in cases:
            for stage in case.pipeline:
                classify_ms += _time_call(lambda s=stage: classify(s))

        emu_ms = 0.0
        emu_calls = 0
        for level in (1, 2):
            for width in (8, 32, 128):
                for stride in (256, 1024, 2048):
                    params = EmuParams(
                        level=level,
                        row_width_elems=width,
                        row_stride_elems=stride,
                        max_rows=256 if fast else 2048,
                        dts=4,
                    )
                    emu_ms += _time_call(lambda p=params: emu(arch, p))
                    emu_calls += 1

        temporal_ms = 0.0
        spatial_ms = 0.0
        by_name = dict(cases)
        for name in _TEMPORAL_NAMES:
            if name not in by_name:
                continue
            for stage in by_name[name].pipeline:
                info = classify(stage)
                if info.locality.name != "TEMPORAL":
                    continue
                temporal_ms += _time_call(
                    lambda s=stage, i=info: optimize_temporal(s, arch, i.info)
                )
        for name in _SPATIAL_NAMES:
            if name not in by_name:
                continue
            for stage in by_name[name].pipeline:
                info = classify(stage)
                if info.locality.name != "SPATIAL":
                    continue
                spatial_ms += _time_call(
                    lambda s=stage, i=info: optimize_spatial(s, arch, i.info)
                )
    finally:
        configure_emu_cache(previous)
        clear_emu_cache()
    return {
        "classify_ms": round(classify_ms, 3),
        "emu_ms": round(emu_ms, 3),
        "emu_calls": emu_calls,
        "temporal_ms": round(temporal_ms, 3),
        "spatial_ms": round(spatial_ms, 3),
    }


def _optimize_suite(
    cases,
    arch: ArchSpec,
    *,
    jobs: int,
    cache: Optional[ScheduleCache],
) -> Tuple[float, List[Dict]]:
    """Time one full pass of ``optimize`` over every suite stage.

    Returns (elapsed_ms, serialized schedules in stage order) so the
    caller can verify cross-scenario schedule identity.
    """
    options = optimize_options()
    schedules: List[Dict] = []
    start = _now_ms()
    for _, case in cases:
        for stage in case.pipeline:
            schedule = None
            if cache is not None:
                schedule = cache.get(stage, arch, options)
            if schedule is None:
                schedule = optimize(stage, arch, jobs=jobs).schedule
                if cache is not None:
                    cache.put(stage, arch, options, schedule)
            schedules.append(schedule_to_dict(schedule))
    return _now_ms() - start, schedules


def run_bench(
    *,
    fast: bool = False,
    jobs: int = 4,
    arch: Optional[ArchSpec] = None,
) -> Dict:
    """Measure everything; returns the BENCH_search.json payload."""
    arch = arch or intel_i7_5930k()
    cases = _suite_cases(fast)

    phases = _phase_timings(cases, arch, fast)

    # --- end-to-end scenarios (fresh caches per scenario) -------------
    previous = configure_emu_cache(False)
    clear_emu_cache()
    try:
        serial_ms, serial_schedules = _optimize_suite(
            cases, arch, jobs=1, cache=None
        )
    finally:
        configure_emu_cache(previous)

    configure_emu_cache(True)
    clear_emu_cache()
    cold_ms, cold_schedules = _optimize_suite(
        cases, arch, jobs=jobs, cache=None
    )

    with tempfile.TemporaryDirectory() as tmp:
        cache = ScheduleCache(os.path.join(tmp, "schedules.jsonl"))
        # Populate: one pass fills the schedule cache and the emu memo...
        _optimize_suite(cases, arch, jobs=jobs, cache=cache)
        # ...and the warm pass is what a second run of the same sweep pays.
        warm_ms, warm_schedules = _optimize_suite(
            cases, arch, jobs=jobs, cache=cache
        )
        warm_cache_stats = cache.stats.to_dict()
    emu_stats = emu_cache_stats()
    clear_emu_cache()

    identical = serial_schedules == cold_schedules == warm_schedules
    payload = {
        "format": BENCH_FORMAT,
        "mode": "fast" if fast else "full",
        "arch": arch.name,
        "jobs": jobs,
        "benchmarks": [name for name, _ in cases],
        "phases": phases,
        "end_to_end": {
            "stages": len(serial_schedules),
            "serial_uncached_ms": round(serial_ms, 3),
            "cold_parallel_ms": round(cold_ms, 3),
            "warm_ms": round(warm_ms, 3),
            "speedup_cold_parallel": round(serial_ms / max(cold_ms, 1e-9), 3),
            "speedup_warm": round(serial_ms / max(warm_ms, 1e-9), 3),
            "schedules_identical": identical,
        },
        "emu_cache": {
            "hits": emu_stats.hits,
            "misses": emu_stats.misses,
            "hit_rate": round(emu_stats.hit_rate, 4),
        },
        "schedule_cache": warm_cache_stats,
    }
    return payload


# ---------------------------------------------------------------------
# Regression gate
# ---------------------------------------------------------------------

#: The ratios the CI gate protects (regression-only: current may exceed
#: the baseline freely, it may not fall more than ``tolerance`` below).
GATED_RATIOS = ("speedup_cold_parallel", "speedup_warm")


def check_regression(
    current: Dict, baseline: Dict, *, tolerance: float = 0.2
) -> List[str]:
    """Compare a fresh run against the committed baseline.

    Returns a list of human-readable failures (empty = gate passes).
    Only machine-independent quantities are gated: the two speedup
    ratios (within ``tolerance``, one-sided) and schedule identity.
    Absolute milliseconds are informational.
    """
    failures: List[str] = []
    if current.get("format") != baseline.get("format"):
        failures.append(
            f"format mismatch: current={current.get('format')!r} "
            f"baseline={baseline.get('format')!r} (regenerate the baseline)"
        )
        return failures
    if current.get("mode") != baseline.get("mode"):
        failures.append(
            f"mode mismatch: current={current.get('mode')!r} "
            f"baseline={baseline.get('mode')!r} (compare like with like)"
        )
        return failures
    cur_e2e = current.get("end_to_end", {})
    base_e2e = baseline.get("end_to_end", {})
    if not cur_e2e.get("schedules_identical", False):
        failures.append(
            "schedules are not identical across serial/parallel/cached "
            "scenarios — determinism regression"
        )
    for key in GATED_RATIOS:
        cur = cur_e2e.get(key)
        base = base_e2e.get(key)
        if cur is None or base is None:
            failures.append(f"missing ratio {key!r} in current or baseline")
            continue
        floor = base * (1.0 - tolerance)
        if cur < floor:
            failures.append(
                f"{key} regressed: {cur:.2f}x < {floor:.2f}x "
                f"(baseline {base:.2f}x - {tolerance:.0%} tolerance)"
            )
    return failures


def write_payload(payload: Dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
