"""Additional PolyBench-style kernels beyond the paper's Table 4.

These widen the classifier's test surface and give downstream users more
ready-made workloads.  Expected classifications (asserted in the tests):

==========  ==========================================  ==========
kernel      statement                                   locality
==========  ==========================================  ==========
2mm         two chained matmuls                          temporal
atax        ``y = A^T (A x)`` (two stages)               temporal
bicg        ``s = A^T r`` ; ``q = A p``                  temporal
mvt         ``x1 += A y1`` ; ``x2 += A^T y2``            temporal
jacobi2d    5-point stencil sweep                        none (stencil)
seidel-ish  9-point neighborhood average                 none (stencil)
==========  ==========================================  ==========

The Gauss–Seidel kernel is expressed Jacobi-style (reads the input plane,
writes a fresh plane): true in-place wavefront dependences are not
expressible in a Halide-like pure DSL — the same restriction Halide
itself has.
"""

from __future__ import annotations

from repro.bench.suite import BenchmarkCase
from repro.ir.func import Buffer, Func, Pipeline, RVar, Var, float32


def make_2mm(n: int = 1024, alpha: float = 1.5) -> BenchmarkCase:
    """PolyBench 2mm: ``D = alpha * (A@B) @ C``."""
    a = Buffer("A", (n, n), float32)
    b = Buffer("B", (n, n), float32)
    c = Buffer("Cm", (n, n), float32)
    i1, j1 = Var("i1"), Var("j1")
    k1 = RVar("k1", n)
    tmp = Func("Tmp")
    tmp[i1, j1] = 0.0
    tmp[i1, j1] = tmp[i1, j1] + alpha * a[i1, k1] * b[k1, j1]
    tmp.set_bounds({i1: n, j1: n})
    i2, j2 = Var("i2"), Var("j2")
    k2 = RVar("k2", n)
    d = Func("D")
    d[i2, j2] = 0.0
    d[i2, j2] = d[i2, j2] + tmp[i2, k2] * c[k2, j2]
    d.set_bounds({i2: n, j2: n})
    return BenchmarkCase(
        name="2mm",
        description="Two chained matrix multiplications",
        pipeline=Pipeline([tmp, d], name="2mm"),
        problem_size=f"{n}x{n}",
    )


def make_atax(n: int = 2048) -> BenchmarkCase:
    """PolyBench atax: ``y = A^T @ (A @ x)``."""
    a = Buffer("A", (n, n), float32)
    x = Buffer("x", (n,), float32)
    i = Var("i")
    j = RVar("j", n)
    tmp = Func("TmpV")
    tmp[i] = 0.0
    tmp[i] = tmp[i] + a[i, j] * x[j]
    tmp.set_bounds({i: n})
    i2 = Var("i2")
    j2 = RVar("j2", n)
    y = Func("y")
    y[i2] = 0.0
    y[i2] = y[i2] + a[j2, i2] * tmp[j2]
    y.set_bounds({i2: n})
    return BenchmarkCase(
        name="atax",
        description="Matrix transpose and vector multiplication",
        pipeline=Pipeline([tmp, y], name="atax"),
        problem_size=f"{n}x{n}",
    )


def make_bicg(n: int = 2048) -> BenchmarkCase:
    """PolyBench bicg: ``s = A^T @ r`` and ``q = A @ p``."""
    a = Buffer("A", (n, n), float32)
    r = Buffer("r", (n,), float32)
    p = Buffer("p", (n,), float32)
    i = Var("i")
    k = RVar("k", n)
    s = Func("s")
    s[i] = 0.0
    s[i] = s[i] + a[k, i] * r[k]
    s.set_bounds({i: n})
    i2 = Var("i2")
    k2 = RVar("k2", n)
    q = Func("q")
    q[i2] = 0.0
    q[i2] = q[i2] + a[i2, k2] * p[k2]
    q.set_bounds({i2: n})
    return BenchmarkCase(
        name="bicg",
        description="BiCG sub-kernel of BiCGStab",
        pipeline=Pipeline([s, q], name="bicg"),
        problem_size=f"{n}x{n}",
    )


def make_mvt(n: int = 2048) -> BenchmarkCase:
    """PolyBench mvt: ``x1 += A @ y1`` and ``x2 += A^T @ y2``."""
    a = Buffer("A", (n, n), float32)
    x1_in = Buffer("x1in", (n,), float32)
    x2_in = Buffer("x2in", (n,), float32)
    y1 = Buffer("y1", (n,), float32)
    y2 = Buffer("y2", (n,), float32)
    i = Var("i")
    j = RVar("j", n)
    x1 = Func("x1")
    x1[i] = x1_in[i]
    x1[i] = x1[i] + a[i, j] * y1[j]
    x1.set_bounds({i: n})
    i2 = Var("i2")
    j2 = RVar("j2", n)
    x2 = Func("x2")
    x2[i2] = x2_in[i2]
    x2[i2] = x2[i2] + a[j2, i2] * y2[j2]
    x2.set_bounds({i2: n})
    return BenchmarkCase(
        name="mvt",
        description="Matrix-vector product and transpose",
        pipeline=Pipeline([x1, x2], name="mvt"),
        problem_size=f"{n}x{n}",
    )


def make_jacobi2d(n: int = 2048) -> BenchmarkCase:
    """One Jacobi-2D sweep: 5-point stencil into a fresh plane."""
    a = Buffer("Ain", (n + 2, n + 2), float32)
    x, y = Var("x"), Var("y")
    out = Func("Jac")
    out[y, x] = 0.2 * (
        a[y + 1, x + 1]
        + a[y + 1, x]
        + a[y + 1, x + 2]
        + a[y, x + 1]
        + a[y + 2, x + 1]
    )
    out.set_bounds({x: n, y: n})
    return BenchmarkCase(
        name="jacobi2d",
        description="Jacobi 2-D five-point stencil sweep",
        pipeline=Pipeline([out]),
        problem_size=f"{n}x{n}",
    )


def make_seidel_like(n: int = 2048) -> BenchmarkCase:
    """A 9-point neighborhood average (Seidel's pattern, Jacobi-style)."""
    a = Buffer("Ain", (n + 2, n + 2), float32)
    x, y = Var("x"), Var("y")
    out = Func("Seidel")
    expr = None
    for dy in (0, 1, 2):
        for dx in (0, 1, 2):
            term = a[y + dy, x + dx]
            expr = term if expr is None else expr + term
    out[y, x] = expr / 9.0
    out.set_bounds({x: n, y: n})
    return BenchmarkCase(
        name="seidel",
        description="Nine-point neighborhood average",
        pipeline=Pipeline([out]),
        problem_size=f"{n}x{n}",
    )


#: The extra kernels, keyed by name.
EXTRAS = {
    "2mm": make_2mm,
    "atax": make_atax,
    "bicg": make_bicg,
    "mvt": make_mvt,
    "jacobi2d": make_jacobi2d,
    "seidel": make_seidel_like,
}


def make_extra(name: str, **kwargs) -> BenchmarkCase:
    """Instantiate an extra kernel by name."""
    if name not in EXTRAS:
        raise KeyError(f"unknown extra benchmark {name!r}; known: {sorted(EXTRAS)}")
    return EXTRAS[name](**kwargs)
