"""The paper's benchmark suite (Table 4) expressed in the mini-DSL.

:mod:`repro.bench.suite` defines all twelve benchmarks with factory
functions so every use gets fresh ``Func`` objects;
:mod:`repro.bench.workloads` records the paper's problem sizes and the
scaled-down sizes used by fast tests.

:mod:`repro.bench.perf` (CLI: ``python -m repro.bench``) times the
*search machinery itself* over this suite and gates CI against the
committed ``BENCH_search.json`` baseline; see docs/API.md
§ *Performance*.
"""

from repro.bench.suite import (
    BenchmarkCase,
    SUITE,
    make_benchmark,
    benchmark_names,
    make_matmul,
    make_gemm,
    make_trmm,
    make_syrk,
    make_syr2k,
    make_3mm,
    make_doitgen,
    make_convlayer,
    make_transpose,
    make_transpose_mask,
    make_copy,
    make_mask,
)
from repro.bench.workloads import PAPER_SIZES, SMALL_SIZES, size_for
from repro.bench.polybench import (
    EXTRAS,
    make_extra,
    make_2mm,
    make_atax,
    make_bicg,
    make_mvt,
    make_jacobi2d,
    make_seidel_like,
)

__all__ = [
    "BenchmarkCase",
    "SUITE",
    "make_benchmark",
    "benchmark_names",
    "make_matmul",
    "make_gemm",
    "make_trmm",
    "make_syrk",
    "make_syr2k",
    "make_3mm",
    "make_doitgen",
    "make_convlayer",
    "make_transpose",
    "make_transpose_mask",
    "make_copy",
    "make_mask",
    "PAPER_SIZES",
    "SMALL_SIZES",
    "size_for",
    "EXTRAS",
    "make_extra",
    "make_2mm",
    "make_atax",
    "make_bicg",
    "make_mvt",
    "make_jacobi2d",
    "make_seidel_like",
]
