"""Content fingerprints for the persistent schedule cache.

A cached schedule is only reusable when *everything* the optimizer read
is unchanged, so cache keys are built from three independent hashes:

* :func:`func_fingerprint` — the algorithm: the Func's name, output
  dtype, loop bounds, and every definition (left-hand variables,
  reduction variables with extents, the full right-hand expression tree,
  update flag) plus the shape/dtype/name of every buffer it reads.
  Expression nodes are immutable value objects with deterministic
  ``repr``s, which makes ``repr(rhs)`` a canonical structural encoding.
* :meth:`repro.arch.ArchSpec.fingerprint` — the platform: any field
  change (cache geometry, prefetcher degree, core/thread counts...)
  invalidates cached schedules for that platform.
* :func:`options_fingerprint` — the optimizer configuration that can
  change the chosen schedule (``use_nti``, ``use_emu``, ``order_step``,
  ``exhaustive``...).  Note that ``jobs`` is deliberately *not* part of
  the options: parallel evaluation is bit-identical to serial (see
  :mod:`repro.core.parallel`), so worker count must not fragment the
  cache.

All hashes are SHA-256 over canonical (sorted-key, tight-separator)
JSON, matching the checksum discipline of :mod:`repro.sweep.journal`.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List

from repro.ir.expr import Access, Expr
from repro.ir.func import Func

__all__ = ["func_fingerprint", "options_fingerprint", "optimize_options"]


def _sha256(payload) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _buffers_read(expr: Expr, out: Dict[str, Dict]) -> None:
    """Collect every buffer referenced by ``expr`` (first-seen order is
    irrelevant; the dict is serialized with sorted keys)."""
    if isinstance(expr, Access):
        buf = expr.buffer
        shape = getattr(buf, "shape", None)
        out.setdefault(
            buf.name,
            {
                "shape": list(shape) if shape is not None else None,
                "dtype": buf.dtype.name,
            },
        )
    for child in expr.children():
        _buffers_read(child, out)


def func_fingerprint(func: Func) -> str:
    """Stable content hash of everything the optimizer reads from ``func``.

    Two Funcs built independently from the same definition share a
    fingerprint; changing a bound, an index expression, a buffer shape or
    the dtype produces a new one.
    """
    buffers: Dict[str, Dict] = {}
    definitions: List[Dict] = []
    for definition in func.definitions:
        _buffers_read(definition.rhs, buffers)
        definitions.append(
            {
                "lhs": [v.name for v in definition.lhs_vars],
                "rvars": [
                    {"name": r.name, "extent": r.extent, "min": r.min}
                    for r in definition.rvars
                ],
                "rhs": repr(definition.rhs),
                "is_update": definition.is_update,
            }
        )
    bounds = {
        v.name: func.bound_of(v.name)
        for d in func.definitions
        for v in d.all_vars()
    }
    return _sha256(
        {
            "name": func.name,
            "dtype": func.dtype.name,
            "bounds": bounds,
            "definitions": definitions,
            "buffers": buffers,
        }
    )


def optimize_options(
    *,
    use_nti: bool = True,
    parallelize: bool = True,
    vectorize: bool = True,
    exhaustive: bool = False,
    use_emu: bool = True,
    order_step: bool = True,
    multistride="off",
) -> Dict[str, object]:
    """The canonical options dict for one :func:`repro.core.optimize`
    configuration — exactly the switches that can change the chosen
    schedule, nothing that cannot (``jobs``, tracers, deadlines).

    Delegates to :class:`repro.options.OptimizeOptions`, the single
    source of truth for the option surface; the explicit keyword-only
    signature is kept so anything *outside* the cache identity
    (``jobs=...``) is rejected right here with a ``TypeError``.
    """
    from repro.options import OptimizeOptions

    return OptimizeOptions(
        use_nti=use_nti,
        parallelize=parallelize,
        vectorize=vectorize,
        exhaustive=exhaustive,
        use_emu=use_emu,
        order_step=order_step,
        multistride=multistride,
    ).cache_dict()


def options_fingerprint(options: Dict) -> str:
    """Stable content hash of an optimizer-options dict."""
    return _sha256(options)
