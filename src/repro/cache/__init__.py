"""Persistent cross-run schedule cache (content-addressed, checksummed).

The Algorithm 2/3 searches are deterministic functions of the algorithm,
the platform, and the optimizer options — so their results are cacheable
across processes and runs.  This package provides:

* :class:`ScheduleCache` — the JSONL store (journal-style durability,
  per-record checksums, replay-validated hits);
* :func:`func_fingerprint` / :func:`options_fingerprint` /
  :func:`optimize_options` — the content hashes behind the cache key
  (the architecture half is :meth:`repro.arch.ArchSpec.fingerprint`).

Consumers: :func:`repro.robust.safe_optimize` (``cache=`` keyword), the
sweep runner (``schedule_cache=`` / ``--schedule-cache``), and the
:mod:`repro.bench` harness's warm-path measurements.
"""

from repro.cache.fingerprint import (
    func_fingerprint,
    optimize_options,
    options_fingerprint,
)
from repro.cache.store import (
    CACHE_FORMAT,
    CacheStats,
    ScheduleCache,
    cache_key,
    check_shard_caches,
    shard_cache_path,
)

__all__ = [
    "CACHE_FORMAT",
    "CacheStats",
    "ScheduleCache",
    "cache_key",
    "check_shard_caches",
    "func_fingerprint",
    "optimize_options",
    "options_fingerprint",
    "shard_cache_path",
]
