"""The persistent cross-run schedule cache.

A checksummed, append-only JSONL store mapping
``(Func fingerprint, ArchSpec fingerprint, optimizer options)`` to the
serialized schedule the search chose, so a sweep — or any repeated
``safe_optimize`` call — pays for each search once per machine instead
of once per run.  Every line is one record::

    {"format": "repro-schedule-cache-v1", "key": "<sha256>",
     "func_fingerprint": "...", "arch_fingerprint": "...",
     "options": {...}, "schedule": {...}, "meta": {...},
     "sha256": "<hex>"}

The durability/corruption discipline is :mod:`repro.sweep.journal`'s:
appends are flushed and fsync'd per record, per-record SHA-256 checksums
catch truncated or bit-flipped lines, and :meth:`ScheduleCache.load`
skips damaged lines with a diagnostic — a torn append costs one entry,
never the cache.  The last record per key wins, so re-caching a key
simply appends a superseding line; :meth:`ScheduleCache.compact` drops
superseded lines via an atomic rewrite.

Corruption is *counted and healed*, never silently absorbed: every
skipped line bumps ``stats.corrupt_lines_skipped`` (surfaced through the
serve layer's ``/metrics`` cache block), :meth:`ScheduleCache.compact`
preserves the damaged raw lines in a ``<path>.quarantine`` sidecar
before rewriting the store clean (one structured ``cache.corrupt`` trace
event per compact that found any), and :meth:`ScheduleCache.heal` is the
detect-quarantine-repair loop the serve layer runs at startup.  For a
sharded fleet, :func:`check_shard_caches` cross-checks that any key
present in several shard stores (failover writes) carries bit-identical
schedules everywhere — the ``fleet status`` consistency report.

Hits are *replayed*, not trusted: :meth:`ScheduleCache.get` re-applies
the stored directives to the caller's Func through
:func:`repro.ir.serialize.schedule_from_dict`, so a stale entry whose
directives no longer fit the definition fails the replay and degrades to
a miss (the caller then searches and overwrites the entry) instead of
returning a corrupt schedule.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

try:  # advisory inter-process locking; unix-only, gracefully absent
    import fcntl
except ImportError:  # pragma: no cover - non-posix platforms
    fcntl = None

from repro.arch import ArchSpec
from repro.cache.fingerprint import func_fingerprint, options_fingerprint
from repro.ir.func import Func
from repro.ir.schedule import Schedule
from repro.ir.serialize import schedule_from_dict, schedule_to_dict
from repro.util import ScheduleError

#: Schema tag; bump when the record layout changes incompatibly.
CACHE_FORMAT = "repro-schedule-cache-v1"

__all__ = [
    "CACHE_FORMAT",
    "CacheStats",
    "ScheduleCache",
    "cache_key",
    "check_shard_caches",
    "shard_cache_path",
]


def _canonical(payload: Dict) -> str:
    """Deterministic JSON used both on the wire and under the checksum."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _checksum(payload: Dict) -> str:
    body = {k: v for k, v in payload.items() if k != "sha256"}
    return hashlib.sha256(_canonical(body).encode("utf-8")).hexdigest()


@contextmanager
def _advisory_lock(path: str, *, exclusive: bool):
    """Advisory inter-process lock on the sidecar ``<path>.lock`` file.

    Appenders take it *shared* (any number may write concurrently —
    O_APPEND keeps their records whole), while :meth:`ScheduleCache.compact`
    takes it *exclusive* so its read-everything-then-replace cannot race a
    concurrent append and silently drop the appended record.  The lock
    lives on a sidecar rather than the data file because compaction
    replaces the data file's inode, which would detach any lock held on
    it.  Without :mod:`fcntl` (non-posix) this degrades to a no-op —
    same-process callers are still serialized by the instance lock.
    """
    if fcntl is None:
        yield
        return
    fd = os.open(path + ".lock", os.O_CREAT | os.O_RDWR, 0o644)
    try:
        fcntl.flock(fd, fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH)
        yield
    finally:
        try:
            fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)


def cache_key(func_fp: str, arch_fp: str, options: Dict) -> str:
    """The record key: one hash over the three key components."""
    return hashlib.sha256(
        f"{func_fp}:{arch_fp}:{options_fingerprint(options)}".encode("utf-8")
    ).hexdigest()


def shard_cache_path(base_path: str, shard: int) -> str:
    """The per-shard spelling of a fleet's base cache path.

    ``cache.jsonl`` + shard 2 → ``cache-shard2.jsonl``.  The fleet's
    consistent-hash router keeps each key on one shard, so giving every
    worker its own file keeps each store warm for exactly its keyspace
    and keeps appends single-writer — no cross-process compaction races,
    and a worker restart reopens a cache that is warm by construction.
    """
    if shard < 0:
        raise ValueError(f"shard must be >= 0, got {shard}")
    root, ext = os.path.splitext(base_path)
    return f"{root}-shard{shard}{ext or '.jsonl'}"


@dataclass
class CacheStats:
    """Cumulative counters for one :class:`ScheduleCache` instance.

    ``corrupt_lines_skipped`` counts every damaged line a load refused
    to ingest (unparsable JSON, checksum mismatch, malformed record);
    ``quarantined_lines`` counts how many of those :meth:`compact`
    preserved in the ``.quarantine`` sidecar before repairing the store.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    replay_failures: int = 0
    corrupt_lines_skipped: int = 0
    quarantined_lines: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "replay_failures": self.replay_failures,
            "corrupt_lines_skipped": self.corrupt_lines_skipped,
            "quarantined_lines": self.quarantined_lines,
        }


class ScheduleCache:
    """The on-disk schedule store, safe for concurrent use in one process.

    The backing file is read lazily on first access and kept as an
    in-memory ``key -> record`` map; :meth:`put` appends to the file and
    updates the map, so interleaved get/put always see the caller's own
    writes.  Cross-process appends are line-atomic — one ``O_APPEND``
    ``os.write`` per record, which the kernel serializes — and readers
    tolerate any torn line, so several processes (sweep workers, serve
    workers) may share one cache file.  :meth:`compact` additionally
    takes an exclusive advisory lock (``<path>.lock``) against the
    shared lock appends hold, so rewrites never drop concurrent appends.
    """

    def __init__(self, path: str, *, tracer=None) -> None:
        self.path = str(path)
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._records: Optional[Dict[str, Dict]] = None
        #: Human-readable notes about skipped lines from the last load.
        self.load_diagnostics: List[str] = []
        #: Raw damaged lines from the last load, kept verbatim so
        #: :meth:`compact` can quarantine them before the rewrite
        #: destroys the evidence.
        self._corrupt_raw: List[str] = []
        if tracer is None:
            from repro.obs import NULL_TRACER

            tracer = NULL_TRACER
        self.tracer = tracer

    # -- key construction ---------------------------------------------

    @staticmethod
    def key_for(func: Func, arch: ArchSpec, options: Dict) -> str:
        return cache_key(func_fingerprint(func), arch.fingerprint(), options)

    # -- reading -------------------------------------------------------

    def load(self, *, count_corrupt: bool = True) -> Dict[str, Dict]:
        """Parse the backing file; last valid record per key wins.

        Damaged lines are skipped (and kept verbatim for
        :meth:`compact`'s quarantine); each skip bumps
        ``stats.corrupt_lines_skipped`` unless ``count_corrupt`` is
        false — :meth:`compact`'s internal re-read passes false so one
        corrupt line is never counted twice by the heal cycle.
        """
        self.load_diagnostics = []
        self._corrupt_raw = []
        records: Dict[str, Dict] = {}
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except FileNotFoundError:
            return records
        for lineno, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            note = self._ingest(line, lineno, records)
            if note is not None:
                self.load_diagnostics.append(note)
                self._corrupt_raw.append(line)
                if count_corrupt:
                    self.stats.corrupt_lines_skipped += 1
        return records

    def _ingest(
        self, line: str, lineno: int, records: Dict[str, Dict]
    ) -> Optional[str]:
        """Parse one line into ``records``; return a diagnostic on skip."""
        where = f"{self.path}:{lineno}"
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            return f"{where}: skipping unparsable line ({exc.msg})"
        if not isinstance(payload, dict):
            return f"{where}: skipping non-object line"
        if payload.get("format") != CACHE_FORMAT:
            return (
                f"{where}: skipping record with format="
                f"{payload.get('format')!r} (expected {CACHE_FORMAT!r})"
            )
        if payload.get("sha256") != _checksum(payload):
            return f"{where}: skipping record with bad checksum (truncated?)"
        key = payload.get("key")
        if not isinstance(key, str) or not isinstance(
            payload.get("schedule"), dict
        ):
            return f"{where}: skipping malformed record"
        records[key] = payload
        return None

    def _loaded(self) -> Dict[str, Dict]:
        if self._records is None:
            self._records = self.load()
        return self._records

    def __len__(self) -> int:
        with self._lock:
            return len(self._loaded())

    def get(
        self, func: Func, arch: ArchSpec, options: Dict
    ) -> Optional[Schedule]:
        """Look up and replay a cached schedule for this exact key.

        Returns ``None`` on a miss *or* when the stored directives no
        longer replay onto ``func`` (counted in
        ``stats.replay_failures``) — stale entries degrade to misses.
        """
        key = self.key_for(func, arch, options)
        with self._lock:
            record = self._loaded().get(key)
            if record is None:
                self.stats.misses += 1
                return None
        try:
            schedule = schedule_from_dict(func, record["schedule"])
        except ScheduleError as exc:
            with self._lock:
                self.stats.replay_failures += 1
                self.stats.misses += 1
                self.load_diagnostics.append(
                    f"{self.path}: entry {key[:12]}... did not replay "
                    f"({exc}); treating as a miss"
                )
            return None
        with self._lock:
            self.stats.hits += 1
        return schedule

    # -- writing -------------------------------------------------------

    def put(
        self,
        func: Func,
        arch: ArchSpec,
        options: Dict,
        schedule: Schedule,
        meta: Optional[Dict] = None,
    ) -> str:
        """Durably store one schedule (flush + fsync); returns the key."""
        func_fp = func_fingerprint(func)
        arch_fp = arch.fingerprint()
        key = cache_key(func_fp, arch_fp, options)
        payload = {
            "format": CACHE_FORMAT,
            "key": key,
            "func_fingerprint": func_fp,
            "arch_fingerprint": arch_fp,
            "options": dict(options),
            "schedule": schedule_to_dict(schedule),
            "meta": dict(meta or {}),
        }
        payload["sha256"] = _checksum(payload)
        line = _canonical(payload) + "\n"
        with self._lock:
            directory = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(directory, exist_ok=True)
            # One O_APPEND os.write per record: the kernel serializes the
            # seek-to-end+write, so concurrent writers (sweep workers,
            # serve workers, several processes on one cache file) can
            # never interleave bytes within a line — the checksum then
            # only has torn tails from crashes to catch, not shuffles.
            with _advisory_lock(self.path, exclusive=False):
                fd = os.open(
                    self.path,
                    os.O_WRONLY | os.O_APPEND | os.O_CREAT,
                    0o644,
                )
                try:
                    os.write(fd, line.encode("utf-8"))
                    os.fsync(fd)
                finally:
                    os.close(fd)
            self._loaded()[key] = payload
            self.stats.stores += 1
        return key

    def compact(self) -> int:
        """Drop superseded/corrupt lines via an atomic rewrite (temp file
        + fsync + rename, as in :meth:`repro.sweep.Journal.rewrite`);
        returns the surviving record count.

        Corrupt lines are not simply dropped: their raw bytes are
        appended to the ``<path>.quarantine`` sidecar first (fsync'd,
        counted in ``stats.quarantined_lines``) and one structured
        ``cache.corrupt`` trace event is emitted per compact that found
        any — so a flipped bit leaves an audit trail instead of
        vanishing in the rewrite.

        Holds the *exclusive* advisory lock for the whole
        read-then-replace, so records appended by other processes midway
        cannot be lost to the rewrite — appenders (shared lock) simply
        wait it out.
        """
        with self._lock:
            with _advisory_lock(self.path, exclusive=True):
                # Re-read under the lock (other processes may have
                # appended); the re-read must not double-count lines the
                # first load already reported.
                self._records = None
                records = self.load(count_corrupt=False)
                self._records = records
                if self._corrupt_raw:
                    self._quarantine(self._corrupt_raw)
                directory = os.path.dirname(os.path.abspath(self.path)) or "."
                fd, tmp_path = tempfile.mkstemp(
                    prefix=".schedule-cache-", suffix=".tmp", dir=directory
                )
                try:
                    with os.fdopen(fd, "w", encoding="utf-8") as handle:
                        for payload in records.values():
                            handle.write(_canonical(payload) + "\n")
                        handle.flush()
                        os.fsync(handle.fileno())
                    os.replace(tmp_path, self.path)
                except BaseException:
                    try:
                        os.unlink(tmp_path)
                    except OSError:
                        pass
                    raise
                return len(records)

    def _quarantine(self, lines: List[str]) -> None:
        """Preserve damaged raw lines in the sidecar; called from
        :meth:`compact` with both locks held."""
        quarantine_path = self.path + ".quarantine"
        fd = os.open(
            quarantine_path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
        )
        try:
            os.write(
                fd, ("\n".join(lines) + "\n").encode("utf-8", "replace")
            )
            os.fsync(fd)
        finally:
            os.close(fd)
        self.stats.quarantined_lines += len(lines)
        from repro.obs.events import EVENT_CACHE_CORRUPT

        self.tracer.event(
            EVENT_CACHE_CORRUPT,
            path=self.path,
            lines=len(lines),
            quarantine=quarantine_path,
        )

    def heal(self) -> int:
        """Detect, quarantine, and repair corrupt lines; returns how many.

        The self-healing loop the serve layer runs at startup: load the
        store (counting damage), and — only when damage was found —
        compact it, which preserves the damaged lines in the
        ``.quarantine`` sidecar and rewrites the store clean.  A healthy
        store is left untouched (no rewrite churn).
        """
        with self._lock:
            self._records = self.load()
            corrupt = len(self._corrupt_raw)
        if corrupt:
            self.compact()
        return corrupt

    def clear(self) -> None:
        """Remove the backing file (and lock sidecar); forget the map."""
        with self._lock:
            self._records = None
            for path in (self.path, self.path + ".lock"):
                try:
                    os.unlink(path)
                except FileNotFoundError:
                    pass


def check_shard_caches(base_path: str, shards: Sequence[int]) -> Dict:
    """Cross-shard consistency report over a fleet's per-shard stores.

    The consistent-hash router keeps each key home on one shard, but a
    failover leg legitimately writes the same key into the successor's
    store — and because the whole pipeline is deterministic, those twin
    entries must carry *bit-identical* canonical schedule JSON.  Any key
    present in several shard files whose schedules differ means the
    determinism contract broke somewhere (a corrupt line that still
    checksums, divergent search inputs, a bad failover), which is worth
    failing ``fleet status`` over.

    Returns a JSON-shaped report::

        {"shards": {"0": {"path": ..., "entries": N,
                          "corrupt_lines": M}, ...},
         "shared_keys": K, "mismatched_keys": ["<key>", ...],
         "consistent": bool}

    Each shard file is loaded fresh (read-only; no instance reuse), so
    the check sees exactly what is on disk right now.
    """
    per_shard: Dict[str, Dict] = {}
    schedules_by_key: Dict[str, Dict[str, str]] = {}
    for shard in shards:
        path = shard_cache_path(base_path, shard)
        store = ScheduleCache(path)
        records = store.load()
        per_shard[str(shard)] = {
            "path": path,
            "entries": len(records),
            "corrupt_lines": len(store._corrupt_raw),
        }
        for key, payload in records.items():
            schedules_by_key.setdefault(key, {})[str(shard)] = _canonical(
                payload.get("schedule", {})
            )
    shared = {
        key: by_shard
        for key, by_shard in schedules_by_key.items()
        if len(by_shard) > 1
    }
    mismatched = sorted(
        key
        for key, by_shard in shared.items()
        if len(set(by_shard.values())) > 1
    )
    return {
        "shards": per_shard,
        "shared_keys": len(shared),
        "mismatched_keys": mismatched,
        "consistent": not mismatched,
    }
