"""Human summary renderer for ``repro-trace-v1`` event logs.

``render_summary`` turns the raw event stream into the report a
performance engineer actually wants after a traced run: where the time
went (spans), how hard each search worked (candidate counters and the
pruned-by-reason breakdown), what the simulator saw per nest, and how
the sweep's cells fared.  ``python -m repro trace out.jsonl`` is the CLI
front end.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.events import (
    EVENT_CANDIDATE_PRUNED,
    EVENT_CELL_OK,
    EVENT_CELL_QUARANTINED,
    EVENT_CELL_RESUMED,
    EVENT_CELL_RETRY,
    EVENT_CLASSIFY,
    EVENT_RUNG,
    EVENT_SEARCH_BOUND,
    EVENT_SIM_NEST,
    KIND_COUNTERS,
    KIND_EVENT,
    KIND_SPAN_END,
)

__all__ = ["summarize", "render_summary"]


def _span_rollup(events) -> Dict[str, Dict[str, float]]:
    """name -> {count, total_ms} over every completed span."""
    spans: Dict[str, Dict[str, float]] = {}
    for payload in events:
        if payload.get("kind") != KIND_SPAN_END:
            continue
        name = payload.get("name", "?")
        entry = spans.setdefault(name, {"count": 0, "total_ms": 0.0})
        entry["count"] += 1
        entry["total_ms"] += float(payload.get("elapsed_ms") or 0.0)
    return spans


def _counter_totals(events) -> Dict[str, float]:
    """Final counter totals: the last ``counters``/``totals`` record, or
    (for a trace cut short before ``close()``) the sum of span deltas."""
    totals: Optional[Dict[str, float]] = None
    for payload in events:
        if (
            payload.get("kind") == KIND_COUNTERS
            and payload.get("name") == "totals"
        ):
            totals = dict(payload.get("attrs") or {})
    if totals is not None:
        return totals
    summed: Dict[str, float] = {}
    for payload in events:
        if payload.get("kind") != KIND_SPAN_END:
            continue
        for key, value in (payload.get("counters") or {}).items():
            summed[key] = summed.get(key, 0) + value
    return summed


def summarize(events) -> Dict:
    """Aggregate an event stream into a plain-data summary object."""
    events = [e for e in events if isinstance(e, dict)]
    pruned: Dict[str, Dict[str, int]] = {}
    bounds: List[Dict] = []
    nests: List[Dict] = []
    classifications: List[Dict] = []
    rungs: List[Dict] = []
    cells = {"ok": 0, "resumed": 0, "quarantined": 0, "retries": 0}
    for payload in events:
        if payload.get("kind") != KIND_EVENT:
            continue
        name = payload.get("name")
        attrs = payload.get("attrs") or {}
        if name == EVENT_CANDIDATE_PRUNED:
            phase = str(attrs.get("phase", "?"))
            reason = str(attrs.get("reason", "?"))
            per_phase = pruned.setdefault(phase, {})
            per_phase[reason] = per_phase.get(reason, 0) + 1
        elif name == EVENT_SEARCH_BOUND:
            bounds.append(attrs)
        elif name == EVENT_SIM_NEST:
            nests.append(attrs)
        elif name == EVENT_CLASSIFY:
            classifications.append(attrs)
        elif name == EVENT_RUNG:
            rungs.append(attrs)
        elif name == EVENT_CELL_OK:
            cells["ok"] += 1
        elif name == EVENT_CELL_RESUMED:
            cells["resumed"] += 1
        elif name == EVENT_CELL_QUARANTINED:
            cells["quarantined"] += 1
        elif name == EVENT_CELL_RETRY:
            cells["retries"] += 1
    return {
        "events": len(events),
        "spans": _span_rollup(events),
        "counters": _counter_totals(events),
        "pruned": pruned,
        "bounds": bounds,
        "nests": nests,
        "classifications": classifications,
        "rungs": rungs,
        "cells": cells,
    }


def _fmt_count(value: float) -> str:
    return f"{int(value)}" if float(value).is_integer() else f"{value:g}"


def render_summary(events) -> str:
    """The ``repro trace`` report: one block per phase, spans first."""
    summary = summarize(events)
    lines: List[str] = [f"trace: {summary['events']} records"]

    if summary["classifications"]:
        lines.append("classified:")
        for attrs in summary["classifications"]:
            lines.append(
                f"  {attrs.get('func', '?')}: "
                f"{attrs.get('locality', '?')}"
                + (" (+NTI)" if attrs.get("use_nti") else "")
            )

    if summary["spans"]:
        lines.append("spans:")
        for name, entry in sorted(
            summary["spans"].items(),
            key=lambda kv: kv[1]["total_ms"],
            reverse=True,
        ):
            lines.append(
                f"  {name:28s} {int(entry['count']):4d}x "
                f"{entry['total_ms']:10.1f} ms"
            )

    if summary["pruned"] or any(
        key.endswith(".candidates") for key in summary["counters"]
    ):
        lines.append("search:")
        phases = set(summary["pruned"])
        phases.update(
            key[: -len(".candidates")]
            for key in summary["counters"]
            if key.endswith(".candidates")
        )
        for phase in sorted(phases):
            considered = summary["counters"].get(f"{phase}.candidates", 0)
            reasons = summary["pruned"].get(phase, {})
            breakdown = ", ".join(
                f"{reason} {count}"
                for reason, count in sorted(reasons.items())
            )
            lines.append(
                f"  {phase}: {_fmt_count(considered)} candidates considered"
                + (f"; pruned: {breakdown}" if breakdown else "")
            )
        if summary["bounds"]:
            lines.append(
                f"  emu bounds applied: {len(summary['bounds'])} "
                "(tile lattice capped below the problem size)"
            )

    if summary["rungs"]:
        failed = [r for r in summary["rungs"] if not r.get("ok")]
        lines.append(
            f"fallback rungs: {len(summary['rungs'])} attempted, "
            f"{len(failed)} failed"
        )
        for attrs in failed:
            lines.append(
                f"  {attrs.get('rung', '?')}: "
                f"{attrs.get('error_type', '?')}"
            )

    if summary["nests"]:
        lines.append("simulated nests:")
        for attrs in summary["nests"]:
            demand = (
                attrs.get("l1_hits", 0)
                + attrs.get("l2_hits", 0)
                + attrs.get("l3_hits", 0)
                + attrs.get("mem_lines", 0)
            ) or 1
            coverage = attrs.get("coverage")
            lines.append(
                f"  {attrs.get('nest', '?')}: "
                f"L1 {100.0 * attrs.get('l1_hits', 0) / demand:.1f}%  "
                f"L2 {100.0 * attrs.get('l2_hits', 0) / demand:.1f}%  "
                f"DRAM {100.0 * attrs.get('mem_lines', 0) / demand:.1f}%"
                + (
                    f"  coverage {100.0 * float(coverage):.0f}%"
                    if coverage is not None
                    else ""
                )
            )

    cells = summary["cells"]
    if any(cells.values()):
        lines.append(
            f"sweep cells: {cells['ok']} measured, {cells['resumed']} "
            f"resumed, {cells['quarantined']} quarantined "
            f"({cells['retries']} retries)"
        )

    if summary["counters"]:
        lines.append("counters:")
        for name, value in sorted(summary["counters"].items()):
            lines.append(f"  {name:36s} {_fmt_count(value):>10s}")

    return "\n".join(lines)
