"""Observability layer: structured tracing and metrics for the repro
pipeline (search, simulation, sweeps).

The surface is deliberately small:

* :class:`Tracer` — spans, counters, structured events; concrete sinks
  are :class:`JsonlTracer` (schema-versioned JSONL event log) and
  :class:`CollectingTracer` (in-memory).
* :data:`NULL_TRACER` / :class:`NullTracer` — the zero-overhead default;
  untraced runs are bit-for-bit identical to pre-instrumentation ones.
* :func:`activate_tracer` / :func:`current_tracer` — ambient tracer via
  a context variable, mirroring :mod:`repro.util.deadline`.
* :class:`CandidateStats` / :class:`CandidateCounter` — the canonical
  candidate accounting shared by every search (replaces the three
  duplicated ``candidates_evaluated`` integers).
* :func:`validate_trace` / :func:`read_trace` / :func:`render_summary`
  — the ``repro trace`` toolchain.
"""

from repro.obs.events import (
    KINDS,
    PRUNE_REASONS,
    TRACE_FORMAT,
    read_trace,
    validate_event,
    validate_trace,
)
from repro.obs.stats import CandidateCounter, CandidateStats
from repro.obs.summary import render_summary, summarize
from repro.obs.tracer import (
    NULL_TRACER,
    CollectingTracer,
    JsonlTracer,
    NullTracer,
    Tracer,
    activate_tracer,
    current_tracer,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "CollectingTracer",
    "JsonlTracer",
    "activate_tracer",
    "current_tracer",
    "CandidateStats",
    "CandidateCounter",
    "TRACE_FORMAT",
    "KINDS",
    "PRUNE_REASONS",
    "validate_event",
    "validate_trace",
    "read_trace",
    "summarize",
    "render_summary",
]
