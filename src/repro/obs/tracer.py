"""The ``Tracer`` protocol and its implementations.

A tracer is the single sink for everything the observability layer
records: **events** (one structured fact — a pruned candidate, a
simulated nest, a sweep-cell outcome), **counters** (cheap accumulators
the hot search loops bump), and **spans** (named scopes whose end record
carries elapsed wall-clock plus the counter deltas that accumulated
inside them).

Implementations:

* :class:`NullTracer` / :data:`NULL_TRACER` — the zero-overhead default.
  Every method is a no-op and ``enabled`` is ``False`` so hot loops can
  skip even the cost of building event attributes; with no tracer
  installed the optimizer's results are bit-for-bit identical to an
  uninstrumented build.
* :class:`CollectingTracer` — keeps events in memory (tests, in-process
  summaries).
* :class:`JsonlTracer` — streams each record as one JSON line to an
  append-only log file (schema ``repro-trace-v1``, see
  :mod:`repro.obs.events`), flushed per record like the sweep journal so
  a crash loses at most the record in flight.

Like the cooperative deadline (:mod:`repro.util.deadline`), the ambient
tracer travels in a :class:`contextvars.ContextVar`: ``activate_tracer``
installs one for a ``with`` body and :func:`current_tracer` retrieves it
(defaulting to :data:`NULL_TRACER`), so deep call sites — ``emu``,
``run_nests`` — need no parameter threading.  Note that context
variables do not propagate into worker threads; components that run
work on a pool (:class:`repro.sweep.SweepRunner`) take the tracer as an
explicit constructor argument instead.  All tracers are thread-safe.
"""

from __future__ import annotations

import contextlib
import json
import threading
import time
from contextvars import ContextVar
from typing import Dict, Iterator, List, Optional, TextIO

from repro.obs.events import TRACE_FORMAT

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "CollectingTracer",
    "JsonlTracer",
    "activate_tracer",
    "current_tracer",
]


class Tracer:
    """Base class for recording tracers.

    Subclasses implement :meth:`_write` (one finished record dict);
    everything else — sequence numbers, relative timestamps, counter
    accumulation, span bracketing — lives here.
    """

    #: Hot loops check this before building event attributes.
    enabled: bool = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._seq = 0
        self._t0 = time.perf_counter()
        self._counters: Dict[str, int] = {}

    # -- sink ----------------------------------------------------------

    def _write(self, payload: Dict) -> None:
        raise NotImplementedError

    def _emit(
        self, kind: str, name: str, attrs: Dict, extra: Optional[Dict] = None
    ) -> None:
        with self._lock:
            payload = {
                "format": TRACE_FORMAT,
                "seq": self._seq,
                "ts_ms": round((time.perf_counter() - self._t0) * 1000.0, 3),
                "kind": kind,
                "name": name,
                "attrs": dict(attrs),
            }
            if extra:
                payload.update(extra)
            self._seq += 1
            self._write(payload)

    # -- recording API -------------------------------------------------

    def event(self, name: str, **attrs) -> None:
        """Record one structured event."""
        self._emit("event", name, attrs)

    def count(self, name: str, n: int = 1) -> None:
        """Bump a named counter (recorded at span ends and on close)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def counters(self) -> Dict[str, int]:
        """A snapshot of every counter's current total."""
        with self._lock:
            return dict(self._counters)

    @contextlib.contextmanager
    def span(self, name: str, **attrs) -> Iterator["Tracer"]:
        """Bracket a scope: ``span_begin`` now, ``span_end`` on exit.

        The end record carries ``elapsed_ms`` and the per-counter deltas
        accumulated inside the span.
        """
        self._emit("span_begin", name, attrs)
        before = self.counters()
        started = time.perf_counter()
        try:
            yield self
        finally:
            after = self.counters()
            delta = {
                key: value - before.get(key, 0)
                for key, value in after.items()
                if value != before.get(key, 0)
            }
            self._emit(
                "span_end",
                name,
                attrs,
                extra={
                    "elapsed_ms": round(
                        (time.perf_counter() - started) * 1000.0, 3
                    ),
                    "counters": delta,
                },
            )

    def close(self) -> None:
        """Flush the final counter totals and release any resources."""
        self._emit("counters", "totals", self.counters())

    # -- context-manager sugar -----------------------------------------

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class _NullSpan:
    """A reusable no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *_exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The zero-overhead default: every operation is a no-op.

    Deliberately *not* a :class:`Tracer` subclass — it carries no lock,
    no sequence counter and no clock, so an instrumented call site costs
    one attribute check (``tracer.enabled``) and nothing else.
    """

    __slots__ = ()

    enabled = False

    def event(self, name: str, **attrs) -> None:
        pass

    def count(self, name: str, n: int = 1) -> None:
        pass

    def counters(self) -> Dict[str, int]:
        return {}

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullTracer":
        return self

    def __exit__(self, *_exc) -> None:
        pass


#: The shared do-nothing tracer every API defaults to.
NULL_TRACER = NullTracer()


class CollectingTracer(Tracer):
    """Keeps every record in memory (``.events``) — tests and summaries."""

    def __init__(self) -> None:
        super().__init__()
        self.events: List[Dict] = []

    def _write(self, payload: Dict) -> None:
        self.events.append(payload)


class JsonlTracer(Tracer):
    """Streams records to an append-only JSONL file, one line each.

    The file is truncated on open (one trace per run); every record is
    flushed immediately, so a crashed run leaves a valid prefix of the
    log behind.  ``close()`` appends the counter-totals record and
    closes the handle; later records are dropped silently, which lets a
    traced component outlive the CLI's trace scope without erroring.
    """

    def __init__(self, path: str) -> None:
        super().__init__()
        self.path = str(path)
        self._handle: Optional[TextIO] = open(self.path, "w", encoding="utf-8")

    def _write(self, payload: Dict) -> None:
        if self._handle is None:
            return
        self._handle.write(
            json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
        )
        self._handle.flush()

    def close(self) -> None:
        if self._handle is None:
            return
        super().close()
        handle, self._handle = self._handle, None
        handle.close()


_ACTIVE: ContextVar[object] = ContextVar(
    "repro_active_tracer", default=NULL_TRACER
)


def current_tracer():
    """The tracer installed by the nearest :func:`activate_tracer`.

    Never ``None`` — with nothing installed this is :data:`NULL_TRACER`,
    so call sites can use the result unconditionally.
    """
    return _ACTIVE.get()


@contextlib.contextmanager
def activate_tracer(tracer) -> Iterator[object]:
    """Install ``tracer`` as the ambient tracer for the ``with`` body.

    Passing ``None`` installs :data:`NULL_TRACER`, muting any outer
    tracer for the scope.
    """
    token = _ACTIVE.set(tracer if tracer is not None else NULL_TRACER)
    try:
        yield _ACTIVE.get()
    finally:
        _ACTIVE.reset(token)
