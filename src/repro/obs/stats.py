"""Canonical search-candidate accounting shared by every optimizer.

Before this module existed, ``core.temporal``, ``core.spatial`` and
``baselines.tss``/``tts`` each kept a private ``candidates_evaluated``
integer — enough for Table 5's runtime model, useless for explaining
*why* a search rejected what it rejected.  :class:`CandidateStats` is
the one replacement: every search result now carries one, the legacy
``candidates_evaluated`` dataclass fields live on as deprecated
read-through properties, and Table 5's deterministic runtime model reads
``stats.considered`` — the exact same count, byte for byte.

The companion :class:`CandidateCounter` bundles the stats object with a
tracer so the hot search loops make a single call per candidate; with
the :data:`~repro.obs.tracer.NULL_TRACER` installed that call is an
integer increment plus one attribute check.

Note the accounting contract: ``considered`` counts candidates the
search *evaluated* (exactly the legacy integer), and ``pruned`` breaks
down the evaluated-but-rejected subset by machine-readable reason.
Candidates excluded *before* evaluation — tiles above an Algorithm-1
``emu`` bound never enter the lattice — appear only in the trace (as
``search.bound`` / ``candidate.pruned(reason="emu_bound")`` events), so
the stats stay identical whether or not a tracer is attached.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict

from repro.obs.tracer import current_tracer

__all__ = ["CandidateStats", "CandidateCounter", "deprecated_counter_read"]


@dataclass
class CandidateStats:
    """What one candidate search did: volume and rejection breakdown."""

    #: Candidates evaluated (the legacy ``candidates_evaluated`` count).
    considered: int = 0
    #: Evaluated-but-rejected candidates, keyed by machine-readable
    #: reason (:data:`repro.obs.events.PRUNE_REASONS`).
    pruned: Dict[str, int] = field(default_factory=dict)

    @property
    def pruned_total(self) -> int:
        return sum(self.pruned.values())

    @property
    def accepted(self) -> int:
        """Candidates that survived every constraint check."""
        return self.considered - self.pruned_total

    def to_dict(self) -> Dict:
        return {"considered": self.considered, "pruned": dict(self.pruned)}

    def describe(self) -> str:
        if not self.pruned:
            return f"{self.considered} candidates"
        reasons = ", ".join(
            f"{reason} {count}"
            for reason, count in sorted(self.pruned.items())
        )
        return f"{self.considered} candidates ({reasons} pruned)"


class CandidateCounter:
    """Per-search recorder: canonical stats plus optional trace output.

    One instance per search invocation; ``stats`` is handed to the
    result dataclass when the search finishes.
    """

    __slots__ = ("stats", "_tracer", "_phase", "_traced")

    def __init__(self, phase: str, tracer=None) -> None:
        self.stats = CandidateStats()
        self._tracer = tracer if tracer is not None else current_tracer()
        self._phase = phase
        self._traced = self._tracer.enabled

    def considered(self) -> None:
        """One candidate entered constraint checking / pricing."""
        self.stats.considered += 1
        if self._traced:
            self._tracer.count(f"{self._phase}.candidates")

    def pruned(self, reason: str, **attrs) -> None:
        """The candidate just considered was rejected for ``reason``."""
        pruned = self.stats.pruned
        pruned[reason] = pruned.get(reason, 0) + 1
        if self._traced:
            self._tracer.count(f"{self._phase}.pruned.{reason}")
            self._tracer.event(
                "candidate.pruned",
                phase=self._phase,
                reason=reason,
                **attrs,
            )


def deprecated_counter_read(owner: str) -> None:
    """Warn for a read of a legacy ``candidates_evaluated`` field."""
    warnings.warn(
        f"{owner}.candidates_evaluated is deprecated and will be removed "
        f"in 2.0; read {owner}.stats.considered instead",
        DeprecationWarning,
        stacklevel=3,
    )
