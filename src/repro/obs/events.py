"""Trace-event vocabulary and the ``repro-trace-v1`` schema validator.

Every record a tracer writes is one JSON object::

    {"format": "repro-trace-v1", "seq": 17, "ts_ms": 4.211,
     "kind": "event", "name": "candidate.pruned",
     "attrs": {"phase": "temporal", "reason": "capacity", ...}}

``kind`` is one of ``event`` | ``span_begin`` | ``span_end`` |
``counters``; ``span_end`` records additionally carry ``elapsed_ms``
and a ``counters`` delta object, and the terminal ``counters`` record
(``name: "totals"``) carries the final counter totals in ``attrs``.

The event *names* and pruning *reasons* below are the machine-readable
contract downstream tooling (the ``repro trace`` summary, CI schema
validation, future learned-tuning datasets) keys on — add to them, never
repurpose them.  The schema tag is versioned exactly like the sweep
journal's (:data:`repro.sweep.journal.JOURNAL_FORMAT`): bump
:data:`TRACE_FORMAT` on any incompatible layout change.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

#: Schema tag; bump when the record layout changes incompatibly.
TRACE_FORMAT = "repro-trace-v1"

# -- record kinds ------------------------------------------------------

KIND_EVENT = "event"
KIND_SPAN_BEGIN = "span_begin"
KIND_SPAN_END = "span_end"
KIND_COUNTERS = "counters"

KINDS = (KIND_EVENT, KIND_SPAN_BEGIN, KIND_SPAN_END, KIND_COUNTERS)

# -- event names -------------------------------------------------------

#: Fig. 1 stage 1: the classifier's verdict for one Func.
EVENT_CLASSIFY = "classify"
#: One candidate rejected by the Algorithm 2/3 search, with a reason.
EVENT_CANDIDATE_PRUNED = "candidate.pruned"
#: Algorithm 1 (or its capacity-only ablation) capping a tile dimension.
EVENT_SEARCH_BOUND = "search.bound"
#: One ``emu`` invocation (inputs and the returned row bound).
EVENT_EMU = "emu"
#: Per-nest simulator counter snapshot (hits, traffic, coverage).
EVENT_SIM_NEST = "sim.nest"
#: Whole-simulation outcome (total milliseconds, nest count).
EVENT_SIM_TOTAL = "sim.total"
#: Stream-table snapshot of the multi-stream detector model (engine
#: occupancy, evictions, late/on-time prefetch hits); emitted once per
#: simulation, only when the stream model is active.
EVENT_SIM_STREAMS = "sim.streams"
#: The three-way strategy classifier's verdict for one Func (chosen
#: strategy, stream count/loop, and the modeled cost of every candidate).
EVENT_MULTISTRIDE = "multistride.decision"
#: One fallback-chain rung attempt in ``safe_optimize``.
EVENT_RUNG = "rung"
#: Sweep cell lifecycle (see :class:`repro.sweep.SweepRunner`).
EVENT_CELL_RESUMED = "sweep.cell.resumed"
EVENT_CELL_ATTEMPT = "sweep.cell.attempt"
EVENT_CELL_RETRY = "sweep.cell.retry"
EVENT_CELL_OK = "sweep.cell.ok"
EVENT_CELL_QUARANTINED = "sweep.cell.quarantined"
#: Serving-layer lifecycle (see :mod:`repro.serve`): one finished
#: request (attrs carry ``served_by`` = ``search`` | ``cache`` |
#: ``coalesced`` and the HTTP status), one load-shed admission
#: rejection, and the start of a graceful drain.
EVENT_SERVE_REQUEST = "serve.request"
EVENT_SERVE_SHED = "serve.shed"
EVENT_SERVE_DRAIN = "serve.drain"
#: Fleet lifecycle (see :mod:`repro.fleet`): worker spawn/up/down state
#: transitions from the supervisor's health gate, one request re-routed
#: to a sibling shard, one worker restart (crash or rolling), a flapping
#: worker quarantined, and the rolling-restart roll itself.
EVENT_FLEET_SPAWN = "fleet.worker.spawn"
EVENT_FLEET_UP = "fleet.worker.up"
EVENT_FLEET_DOWN = "fleet.worker.down"
EVENT_FLEET_RESTART = "fleet.worker.restart"
EVENT_FLEET_QUARANTINED = "fleet.worker.quarantined"
EVENT_FLEET_FAILOVER = "fleet.failover"
EVENT_FLEET_ROLL = "fleet.roll"
#: One per-shard circuit-breaker state transition in the fleet router
#: (attrs: ``shard``, ``state`` = closed | open | half_open).
EVENT_FLEET_BREAKER = "fleet.breaker"
#: One :meth:`repro.cache.ScheduleCache.compact` that found corrupt or
#: checksum-mismatched lines (attrs: ``path``, ``lines``, the sidecar
#: ``quarantine`` they were preserved in) — emitted at most once per
#: compact, per satellite contract.
EVENT_CACHE_CORRUPT = "cache.corrupt"
#: Chaos-harness lifecycle (see :mod:`repro.chaos`): one scripted fault
#: executed against the live fleet (attrs: ``scenario``, ``action``,
#: ``after_responses``, plus action-specific fields).
EVENT_CHAOS_FAULT = "chaos.fault"
#: Fleet-tune lifecycle (see :mod:`repro.tune`): job admission (attrs:
#: ``tune_id``, ``cells``, ``platforms``), per-cell settlement, and the
#: final report fold.
EVENT_TUNE_START = "tune.start"
EVENT_TUNE_CELL_OK = "tune.cell.ok"
EVENT_TUNE_CELL_QUARANTINED = "tune.cell.quarantined"
EVENT_TUNE_CELL_RESUMED = "tune.cell.resumed"
EVENT_TUNE_REPORT = "tune.report"

# -- machine-readable pruning reasons ----------------------------------

#: Tile excluded because Algorithm 1's interference emulation bounds the
#: candidate lattice below the problem size.
REASON_EMU_BOUND = "emu_bound"
#: Working set exceeds the L1 or (halved) L2 capacity (Eqs. 1/6, 18/19).
REASON_CAPACITY = "capacity"
#: Eq. 13: no inter-tile loop offers one iteration per hardware thread.
REASON_PARALLELISM = "parallelism"
#: The vector (column) tile degenerated below two elements.
REASON_VECTOR_TILE = "vector_tile"
#: The cooperative deadline expired mid-search.
REASON_DEADLINE = "deadline"

PRUNE_REASONS = (
    REASON_EMU_BOUND,
    REASON_CAPACITY,
    REASON_PARALLELISM,
    REASON_VECTOR_TILE,
    REASON_DEADLINE,
)

# -- schema validation -------------------------------------------------

_REQUIRED_KEYS = ("format", "seq", "kind", "name", "attrs")


def validate_event(payload, *, prev_seq: Optional[int] = None) -> Optional[str]:
    """Check one record against the ``repro-trace-v1`` schema.

    Returns ``None`` for a valid record, else a human-readable problem
    description.  ``prev_seq`` (the previous record's sequence number)
    additionally enforces strictly increasing ordering.
    """
    if not isinstance(payload, dict):
        return f"record is {type(payload).__name__}, not an object"
    for key in _REQUIRED_KEYS:
        if key not in payload:
            return f"missing required key {key!r}"
    if payload["format"] != TRACE_FORMAT:
        return (
            f"format is {payload['format']!r} (expected {TRACE_FORMAT!r})"
        )
    seq = payload["seq"]
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
        return f"seq must be a non-negative integer, got {seq!r}"
    if prev_seq is not None and seq <= prev_seq:
        return f"seq {seq} does not increase over {prev_seq}"
    if payload["kind"] not in KINDS:
        return f"unknown kind {payload['kind']!r} (known: {KINDS})"
    name = payload["name"]
    if not isinstance(name, str) or not name:
        return f"name must be a non-empty string, got {name!r}"
    attrs = payload["attrs"]
    if not isinstance(attrs, dict) or any(
        not isinstance(k, str) for k in attrs
    ):
        return "attrs must be an object with string keys"
    ts = payload.get("ts_ms")
    if ts is not None and (not isinstance(ts, (int, float)) or ts < 0):
        return f"ts_ms must be a non-negative number, got {ts!r}"
    if payload["kind"] == KIND_SPAN_END:
        elapsed = payload.get("elapsed_ms")
        if not isinstance(elapsed, (int, float)) or elapsed < 0:
            return f"span_end needs a non-negative elapsed_ms, got {elapsed!r}"
        counters = payload.get("counters")
        if not isinstance(counters, dict) or any(
            not isinstance(k, str) or not isinstance(v, (int, float))
            for k, v in counters.items()
        ):
            return "span_end needs a counters object of numeric deltas"
    if name == EVENT_CANDIDATE_PRUNED:
        reason = attrs.get("reason")
        if reason not in PRUNE_REASONS:
            return (
                f"candidate.pruned reason {reason!r} is not machine-"
                f"readable (known: {PRUNE_REASONS})"
            )
        if not isinstance(attrs.get("phase"), str):
            return "candidate.pruned needs a string 'phase' attribute"
    return None


def validate_trace(events: Sequence[Dict]) -> List[str]:
    """Validate a whole event sequence; returns every problem found."""
    problems: List[str] = []
    prev_seq: Optional[int] = None
    for index, payload in enumerate(events):
        note = validate_event(payload, prev_seq=prev_seq)
        if note is not None:
            problems.append(f"record {index}: {note}")
        if isinstance(payload, dict) and isinstance(
            payload.get("seq"), int
        ):
            prev_seq = payload["seq"]
    return problems


def read_trace(path: str) -> Tuple[List[Dict], List[str]]:
    """Load a JSONL trace file.

    Returns ``(events, problems)`` — unparsable lines become problems,
    never exceptions, mirroring the sweep journal's corruption
    tolerance.  A missing file is a single problem entry.
    """
    events: List[Dict] = []
    problems: List[str] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    except OSError as exc:
        return events, [f"{path}: cannot read ({exc.strerror or exc})"]
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"{path}:{lineno}: unparsable line ({exc.msg})")
            continue
        events.append(payload)
    return events, problems
