"""Bench: regenerate Fig. 7 — the ARM Cortex-A15 comparison.

Paper shape: the proposed algorithm outperforms the Auto-Scheduler and the
baseline on the ARM platform too (shared L2, no L3, no NT stores).
"""

from conftest import run_once
from repro.experiments import fig7


def test_fig7(benchmark, config):
    data = run_once(benchmark, lambda: fig7.run(config=config))
    assert "copy" not in data and "mask" not in data  # excluded on ARM
    wins = 0
    near = 0
    for name, rel in data.items():
        assert set(rel) == {"proposed", "autoscheduler", "baseline"}
        if rel["proposed"] >= max(rel.values()) - 1e-9:
            wins += 1
        if rel["proposed"] >= max(rel.values()) - 0.1:
            near += 1
    # Proposed wins the dense linear-algebra kernels outright and stays
    # within 10% of the front on most others; the exceptions (ARM
    # doitgen/convlayer baselines, syr2k's power-of-two thrash) are
    # EXPERIMENTS.md deviations #6/#7.
    assert wins >= 4, data
    assert near >= 7, data
    for name in ("matmul", "gemm", "3mm", "trmm"):
        assert data[name]["proposed"] >= 0.99, data[name]
