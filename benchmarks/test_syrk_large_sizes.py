"""Bench: the paper's syrk/syr2k large-size follow-up (Sec. 5.1).

"However, as expected, after repeating the experiments for larger problem
sizes, the tiled version performed around 25% better than the baseline
schedule."  We re-run syrk at the paper size (tiling ~ baseline) and at a
larger size (tiling should pull ahead).
"""

from conftest import run_once
from repro.arch import intel_i7_5930k
from repro.baselines import baseline_schedule
from repro.bench import make_benchmark
from repro.core import optimize
from repro.sim import Machine


def _pair(machine, n):
    case = make_benchmark("syrk", n=n)
    func = case.funcs[-1]
    proposed = optimize(func, machine.arch, allow_nti=False).schedule
    t_prop = machine.time_funcs([(func, proposed)])
    case2 = make_benchmark("syrk", n=n)
    func2 = case2.funcs[-1]
    t_base = machine.time_funcs([(func2, baseline_schedule(func2, machine.arch))])
    return t_prop, t_base


def test_syrk_tiling_pays_off_at_scale(benchmark, config):
    machine = Machine(intel_i7_5930k(), line_budget=config.line_budget)

    def run():
        small = _pair(machine, 2048)
        large = _pair(machine, 4096)
        print(f"\nsyrk 2048: proposed {small[0]:.1f} ms vs baseline {small[1]:.1f} ms")
        print(f"syrk 4096: proposed {large[0]:.1f} ms vs baseline {large[1]:.1f} ms")
        return {"small": small, "large": large}

    out = run_once(benchmark, run)
    small_gain = out["small"][1] / out["small"][0]
    large_gain = out["large"][1] / out["large"][0]
    # Larger problems benefit at least as much from tiling.
    assert large_gain >= small_gain * 0.9
    assert large_gain >= 1.0
