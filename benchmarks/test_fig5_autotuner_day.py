"""Bench: regenerate Fig. 5 — the one-day autotuner vs Proposed+NTI.

Paper shape: even with the day-long budget the autotuner does not beat the
proposed method on the four benchmarks of increasing loop depth, because
its space only tiles output-array dimensions.
"""

from conftest import run_once
from repro.experiments import fig5


def test_fig5(benchmark, config):
    data = run_once(benchmark, lambda: fig5.run(config=config))
    assert set(data) == {"tpm", "convlayer", "matmul", "doitgen"}
    for name, rel in data.items():
        # Proposed is the reference winner (or ties within 10%).
        assert rel["proposed_nti"] >= rel["autotuner_day"] - 0.1, (name, rel)
