"""Bench: regenerate Table 5 — optimization runtime per benchmark.

Paper: milliseconds for everything except doitgen (0.153 s) and the
convolution layer (7.604 s, dominated by the 5-D nest's permutation
space).  We assert the same two-orders-of-magnitude split.
"""

from conftest import run_once
from repro.experiments import table5


def test_table5(benchmark, config):
    data = run_once(benchmark, lambda: table5.run(config=config))
    assert set(data) == {
        "convlayer", "doitgen", "matmul", "3mm", "gemm", "trmm",
        "syrk", "syr2k", "tpm", "tp", "copy", "mask",
    }
    fast = [n for n in data if n not in ("convlayer", "doitgen")]
    for name in fast:
        assert data[name] < 1.0, f"{name} should optimize in well under 1 s"
    # convlayer is the outlier, as in the paper (7.6 s there).
    assert data["convlayer"] == max(data.values())
    assert data["convlayer"] > 10 * max(data[n] for n in fast)
