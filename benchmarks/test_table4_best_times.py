"""Bench: regenerate Table 4 — best execution time per benchmark/platform.

Paper-vs-measured notes land in EXPERIMENTS.md; here we assert only the
structural claims that must hold for the table to be meaningful.
"""

from conftest import run_once
from repro.experiments import table4


def test_table4(benchmark, config):
    data = run_once(benchmark, lambda: table4.run(config=config))
    assert set(data) == {
        "convlayer", "doitgen", "matmul", "3mm", "gemm", "trmm",
        "syrk", "syr2k", "tpm", "tp", "copy", "mask",
    }
    for name, row in data.items():
        for platform, ms in row.items():
            assert ms > 0, (name, platform)
    # ARM excludes copy/mask, as in the paper.
    assert "arm-a15" not in data["copy"]
    assert "arm-a15" not in data["mask"]
    assert "arm-a15" in data["matmul"]
    # The ARM A15 is the slowest platform on every common benchmark, as in
    # Table 4.
    for name, row in data.items():
        if "arm-a15" in row:
            assert row["arm-a15"] >= max(row["i7-6700"], row["i7-5930k"]) * 0.8
