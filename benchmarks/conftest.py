"""Configuration for the table/figure regeneration benches.

Each bench regenerates one table or figure of the paper at the paper's
problem sizes (the simulator samples traces, so this is tractable) and
records the wall-clock of the regeneration via pytest-benchmark
(``rounds=1`` — these are experiments, not microbenchmarks).

Budget knobs (override via environment):

* ``REPRO_LINE_BUDGET``  — trace lines per nest (default here 40k),
* ``REPRO_AT_EVALS``     — autotuner budget standing in for "1 hour",
* ``REPRO_AT_EVALS_DAY`` — autotuner budget standing in for "1 day",
* ``REPRO_FAST=1``       — scaled-down problem sizes for smoke runs.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import ExperimentConfig


def _default(name: str, value: str) -> None:
    os.environ.setdefault(name, value)


_default("REPRO_LINE_BUDGET", "30000")
_default("REPRO_AT_EVALS", "8")
_default("REPRO_AT_EVALS_DAY", "24")


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    """One shared config so the cross-experiment measurement cache helps."""
    return ExperimentConfig()


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
