"""Ablation benches: which ingredients of the model matter?

Not a paper table — DESIGN.md calls these out as extensions.  Each
ablation disables one ingredient of the proposed temporal optimizer and
re-measures matmul at the paper's size:

* ``no-emu``: replace Algorithm 1's interference bounds with plain
  capacity bounds (prefetch- and conflict-blind tile limits);
* ``no-order``: skip Step 2 (the C_order loop-ordering search);
* ``no-prefetch-hw``: run the *full* method's schedule on a machine with
  the hardware prefetchers disabled, quantifying how much of the final
  performance the prefetchers themselves contribute.
"""

import pytest

from conftest import run_once
from repro.arch import intel_i7_5930k
from repro.bench import make_benchmark
from repro.core import optimize_temporal
from repro.core.standard import build_schedule
from repro.sim import Machine


def _schedule_from(func, arch, **flags):
    result = optimize_temporal(func, arch, **flags)
    return build_schedule(
        func, arch, result.tiles, result.inter_order, result.intra_order
    )


def _measure(machine, name, n, **flags):
    case = make_benchmark(name, n=n)
    func = case.funcs[-1]
    schedule = _schedule_from(func, machine.arch, **flags)
    return machine.time_funcs([(func, schedule)])


def test_ablations_matmul(benchmark, config):
    arch = intel_i7_5930k()
    machine = Machine(arch, line_budget=config.line_budget)

    def run():
        out = {
            "full": _measure(machine, "matmul", 2048),
            "no_emu": _measure(machine, "matmul", 2048, use_emu=False),
            "no_order": _measure(machine, "matmul", 2048, order_step=False),
        }
        # Prefetchers off: same schedule, different machine.
        blind = Machine(arch, line_budget=config.line_budget,
                        enable_prefetch=False)
        out["no_prefetch_hw"] = _measure(blind, "matmul", 2048)
        print("\nAblation (matmul 2048, ms):")
        for key, ms in out.items():
            print(f"  {key:15s} {ms:9.2f}")
        return out

    out = run_once(benchmark, run)
    # The full method is never worse than its ablations (small tolerance
    # for simulator sampling noise).
    assert out["full"] <= out["no_emu"] * 1.10
    assert out["full"] <= out["no_order"] * 1.10
    # Hardware prefetching matters: turning it off must hurt.
    assert out["no_prefetch_hw"] > out["full"] * 1.05
