"""Bench: regenerate Table 6 — Proposed vs the TSS [14] and TTS [15]
analytical tile-size models, sizes 400/800/1024/1600 on the i7-5930K.

Paper headline: Proposed is on average 26% faster than TTS and 41% faster
than TSS (up to 2x on syr2k), with TSS degrading at larger sizes.  The
bench asserts the *direction*: the geo-mean speedup of Proposed over each
baseline model is >= 1 (never slower on average), and Proposed wins
outright at the largest size on matmul.
"""

from conftest import run_once
from repro.experiments import table6
from repro.experiments.table6 import _geomean


def test_table6(benchmark, config):
    data = run_once(benchmark, lambda: table6.run(config=config))
    gains_tts, gains_tss = [], []
    for name, cells in data.items():
        for size, cell in cells.items():
            assert cell["proposed"] > 0
            gains_tts.append(cell["tts"] / cell["proposed"])
            gains_tss.append(cell["tss"] / cell["proposed"])
    # Direction vs TurboTiling holds across the full matrix.
    assert _geomean(gains_tts) >= 0.95, gains_tts
    # matmul/trmm: proposed wins every cell against both models, at every
    # size, as in the paper.  The syrk family deviates at power-of-two
    # sizes in our simulator (EXPERIMENTS.md deviation #7), so the strict
    # per-cell claim is asserted on the kernels where the substrate and
    # the paper agree.
    for name in ("matmul", "trmm"):
        for size, cell in data[name].items():
            assert cell["proposed"] <= cell["tts"] * 1.05, (name, size, cell)
            assert cell["proposed"] <= cell["tss"] * 1.10, (name, size, cell)
    # At the largest common size, proposed beats both on matmul.
    big = data["matmul"][1600]
    assert big["proposed"] <= big["tss"] * 1.05
    assert big["proposed"] <= big["tts"] * 1.05
