"""Extension bench: sensitivity to the prefetcher parameters.

Not a paper table.  Algorithm 1 consumes ``L2pref`` (prefetches per
access) and ``L2maxpref`` (maximum prefetch distance); this bench sweeps
the *hardware* prefetch degree in the simulator while keeping the
schedule fixed, quantifying how much of the proposed schedule's
performance rides on the prefetchers the model assumes:

* with prefetching off, the same schedule must get slower;
* the bulk of the benefit arrives with the first next-line engine
  (degree 1 -> on), matching the model's "next line after every
  reference" assumption.
"""

from conftest import run_once
from repro.arch import intel_i7_5930k
from repro.bench import make_benchmark
from repro.core import optimize
from repro.sim import Machine


def _time_with(arch, enable_prefetch, budget):
    machine = Machine(arch, line_budget=budget, enable_prefetch=enable_prefetch)
    case = make_benchmark("matmul", n=1024)
    func = case.funcs[-1]
    schedule = optimize(func, arch, allow_nti=False).schedule
    return machine.time_funcs([(func, schedule)])


def test_prefetch_sensitivity(benchmark, config):
    arch = intel_i7_5930k()

    def run():
        on = _time_with(arch, True, config.line_budget)
        off = _time_with(arch, False, config.line_budget)
        print(f"\nmatmul 1024, proposed schedule: prefetch ON {on:.1f} ms, "
              f"OFF {off:.1f} ms ({off / on:.2f}x)")
        return {"on": on, "off": off}

    out = run_once(benchmark, run)
    assert out["off"] > out["on"] * 1.1, out
