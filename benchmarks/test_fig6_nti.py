"""Bench: regenerate Fig. 6 — the effect of non-temporal stores.

Paper shape: +NTI exceeds 1.0 on all four write-once kernels (up to ~1.5x
on copy), because streaming stores eliminate the read-for-ownership and
stop output lines from polluting the caches.
"""

from conftest import run_once
from repro.experiments import fig6


def test_fig6(benchmark, config):
    data = run_once(benchmark, lambda: fig6.run(config=config))
    assert set(data) == {"tpm", "tp", "copy", "mask"}
    for name, rel in data.items():
        assert rel["proposed"] == 1.0
        assert rel["proposed_nti"] > 1.05, (name, rel)
        assert rel["proposed_nti"] < 2.5, (name, rel)  # sane magnitude
    # copy benefits the most in the paper's figure (pure bandwidth).
    assert data["copy"]["proposed_nti"] >= data["tpm"]["proposed_nti"] - 0.15
