"""Bench: regenerate Fig. 4 — relative throughput on both Intel platforms.

Shape assertions follow the paper's reading of the figure:

* the proposed method (with NTI where eligible) is the fastest — or within
  a whisker of the fastest — on the temporal and spatial benchmarks;
* the Auto-Scheduler trails the proposed method on the memory-intensive
  kernels but beats the plain baseline on reuse-rich ones;
* the one-hour autotuner does not beat the proposed method on matmul /
  gemm / convlayer (the paper's motivating cases);
* syrk/syr2k: proposed ~ baseline (references along the cache line — the
  paper's stated exception).
"""

from conftest import run_once
from repro.experiments import fig4

#: Dense linear algebra: the paper's headline wins, asserted strictly.
TEMPORAL = ("matmul", "gemm")
SPATIAL = ("tpm", "tp")


def test_fig4(benchmark, config):
    data = run_once(benchmark, lambda: fig4.run(config=config))
    for platform in ("i7-6700", "i7-5930k"):
        rel = data[platform]
        for name in TEMPORAL:
            ours = rel[name]["proposed"]
            assert ours >= 0.9, (platform, name, rel[name])
            assert ours >= rel[name]["baseline"] - 0.05, (platform, name)
            assert ours >= rel[name]["autotuner"] - 0.1, (platform, name)
        # convlayer: proposed must stay near the front and ahead of the
        # 1-hour autotuner; our compute-bound timing model keeps the
        # baseline competitive here where the paper's silicon did not
        # (EXPERIMENTS.md deviation #6), so no baseline comparison.
        conv = rel["convlayer"]
        assert conv["proposed"] >= 0.85, (platform, conv)
        assert conv["proposed"] >= conv["autotuner"] - 0.1, (platform, conv)
        assert conv["proposed"] >= conv["autoscheduler"] - 0.1, (platform, conv)
        for name in SPATIAL:
            ours = rel[name]["proposed_nti"]
            assert ours >= 0.85, (platform, name, rel[name])
            assert ours > rel[name]["baseline"], (platform, name)
            assert ours >= rel[name]["autoscheduler"] - 0.15, (platform, name)
        # syrk/syr2k: no autotuner bar (excluded in the paper); proposed
        # at the front, baseline within ~2x (paper saw parity; our
        # simulator keeps a tiling edge — EXPERIMENTS.md deviation #1).
        for name in ("syrk", "syr2k"):
            assert "autotuner" not in rel[name]
            assert rel[name]["proposed"] >= 0.9, (platform, name)
            assert rel[name]["baseline"] >= 0.25, (platform, name)
        # NTI never hurts where eligible.
        for name in ("tpm", "tp", "copy", "mask"):
            assert rel[name]["proposed_nti"] >= rel[name]["proposed"] - 1e-9
